"""E14 (robustness: failure recovery under deterministic chaos).

The paper deploys LiveSec on a production campus network (Section V),
where VM-based service elements *do* die.  This bench scores the
controller's failure-recovery machinery with the seeded fault harness
(:mod:`repro.faults`):

* one IDS of three crashes mid-run with live steered sessions: every
  affected session must fail over to a healthy peer, with the
  detection/recovery latency bounded by the liveness timeout plus the
  registry expiry sweep;
* the same plan replayed with the same seed must produce an
  event-for-event identical run (the harness is a reproduction tool,
  not a fuzzer);
* with OpenFlow-channel message drops layered on top, barrier-acked
  installs retry until the rules stick and sessions still recover.

E17 (adversarial data plane) scores the forwarding-accountability
loop: for each compromised-switch variant the controller must convict
the misbehaving datapath from path-proof evidence, quarantine it, and
re-steer its sessions -- deterministically.  Run this file directly
(``python benchmarks/bench_chaos.py``) to write the detection results
to ``BENCH_chaos_detect.json`` at the repo root.
"""

import json
import sys
from pathlib import Path

from repro.analysis import format_table
from repro.faults import run_chaos_scenario, run_compromised_switch_scenario

from common import run_once

DETECT_RESULT_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_chaos_detect.json"
)

COMPROMISE_VARIANTS = ("skip-waypoint", "misroute", "tag-strip")


def test_e14_chaos_recovery(benchmark):
    def experiment():
        clean = run_chaos_scenario(seed=7, fail_mode="open", crash="one",
                                   duration_s=12.0)
        replay = run_chaos_scenario(seed=7, fail_mode="open", crash="one",
                                    duration_s=12.0)
        lossy = run_chaos_scenario(seed=7, fail_mode="open", crash="one",
                                   duration_s=12.0, channel_drop_rate=0.15)
        return {"clean": clean, "replay": replay, "lossy": lossy}

    result = run_once(benchmark, experiment)
    clean, replay, lossy = (
        result["clean"], result["replay"], result["lossy"]
    )
    print(file=sys.stderr)
    print(
        format_table(
            ["quantity", "clean", "lossy channel"],
            [
                ["affected sessions",
                 clean.affected_sessions, lossy.affected_sessions],
                ["recovered sessions",
                 clean.recovered_sessions, lossy.recovered_sessions],
                ["unrecovered sessions",
                 clean.unrecovered_sessions, lossy.unrecovered_sessions],
                ["time-to-detect max (s)",
                 round(clean.time_to_detect_s["max"], 3),
                 round(lossy.time_to_detect_s["max"], 3)],
                ["time-to-recover max (s)",
                 round(clean.time_to_recover_s["max"], 3),
                 round(lossy.time_to_recover_s["max"], 3)],
                ["install retries",
                 clean.install_retries, lossy.install_retries],
                ["install failures",
                 clean.install_failures, lossy.install_failures],
            ],
            title="E14: failure recovery under chaos",
        ),
        file=sys.stderr,
    )
    # Shape: the crash hit live sessions and every one of them failed
    # over to a healthy peer.
    assert clean.affected_sessions > 0
    assert clean.recovered_sessions == clean.affected_sessions
    assert clean.unrecovered_sessions == 0
    # Detection is bounded by liveness timeout (1.5s) + report interval
    # + the 1s expiry sweep; recovery happens in the same sweep.
    assert clean.time_to_detect_s["max"] <= 3.5
    assert clean.time_to_recover_s["max"] <= 3.5
    # Same seed => identical event log, event for event.
    assert clean.event_digest == replay.event_digest
    # A lossy control channel forces retries, but barrier-acked
    # installs keep every session recoverable.
    assert lossy.install_retries > 0
    assert lossy.recovered_sessions == lossy.affected_sessions
    assert lossy.unrecovered_sessions == 0


def run_detect_experiment():
    results = []
    for variant in COMPROMISE_VARIANTS:
        report = run_compromised_switch_scenario(seed=7, variant=variant)
        replay = run_compromised_switch_scenario(seed=7, variant=variant)
        results.append({
            "variant": variant,
            "path_violations": report.path_violations,
            "quarantined_dpids": report.quarantined_dpids,
            "recovered_sessions": report.recovered_sessions,
            "time_to_detect_s": report.time_to_detect_s,
            "time_to_recover_s": report.time_to_recover_s,
            "event_digest": report.event_digest,
            "digest_stable": report.event_digest == replay.event_digest,
        })
    return results


def report_detect(results, out=sys.stderr):
    print(file=out)
    print(
        format_table(
            ["variant", "violations", "quarantined", "TTD max (s)",
             "TTR max (s)", "recovered", "digest stable"],
            [
                [r["variant"], r["path_violations"],
                 ",".join(str(d) for d in r["quarantined_dpids"]),
                 round(r["time_to_detect_s"]["max"], 3),
                 round(r["time_to_recover_s"]["max"], 3),
                 r["recovered_sessions"],
                 "yes" if r["digest_stable"] else "NO"]
                for r in results
            ],
            title="E17: compromised-switch detection and quarantine",
        ),
        file=out,
    )


def check_detect(results):
    for r in results:
        # Conviction: the compromised dpid (the middle AS switch, 2)
        # and only it, from path-proof evidence.
        assert r["quarantined_dpids"] == [2], r
        assert r["path_violations"] >= 1, r
        # Bounded detection: the egress proof convicts within a few
        # packets; the absence audit within the silence threshold (1s)
        # plus one audit sweep (0.5s).
        assert r["time_to_detect_s"]["max"] <= 2.0, r
        # Recovery: the quarantined switch's sessions were re-steered.
        assert r["recovered_sessions"] >= 1, r
        assert r["time_to_recover_s"]["max"] <= 2.5, r
        # Determinism: same seed, same event log.
        assert r["digest_stable"], r


def test_e17_compromised_switch_detection(benchmark):
    results = run_once(benchmark, run_detect_experiment)
    report_detect(results)
    check_detect(results)


if __name__ == "__main__":
    detect_results = run_detect_experiment()
    report_detect(detect_results, out=sys.stdout)
    DETECT_RESULT_PATH.write_text(
        json.dumps(detect_results, indent=2) + "\n"
    )
    print(f"wrote {DETECT_RESULT_PATH}")
    check_detect(detect_results)
