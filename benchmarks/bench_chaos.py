"""E14 (robustness: failure recovery under deterministic chaos).

The paper deploys LiveSec on a production campus network (Section V),
where VM-based service elements *do* die.  This bench scores the
controller's failure-recovery machinery with the seeded fault harness
(:mod:`repro.faults`):

* one IDS of three crashes mid-run with live steered sessions: every
  affected session must fail over to a healthy peer, with the
  detection/recovery latency bounded by the liveness timeout plus the
  registry expiry sweep;
* the same plan replayed with the same seed must produce an
  event-for-event identical run (the harness is a reproduction tool,
  not a fuzzer);
* with OpenFlow-channel message drops layered on top, barrier-acked
  installs retry until the rules stick and sessions still recover.
"""

import sys

from repro.analysis import format_table
from repro.faults import run_chaos_scenario

from common import run_once


def test_e14_chaos_recovery(benchmark):
    def experiment():
        clean = run_chaos_scenario(seed=7, fail_mode="open", crash="one",
                                   duration_s=12.0)
        replay = run_chaos_scenario(seed=7, fail_mode="open", crash="one",
                                    duration_s=12.0)
        lossy = run_chaos_scenario(seed=7, fail_mode="open", crash="one",
                                   duration_s=12.0, channel_drop_rate=0.15)
        return {"clean": clean, "replay": replay, "lossy": lossy}

    result = run_once(benchmark, experiment)
    clean, replay, lossy = (
        result["clean"], result["replay"], result["lossy"]
    )
    print(file=sys.stderr)
    print(
        format_table(
            ["quantity", "clean", "lossy channel"],
            [
                ["affected sessions",
                 clean.affected_sessions, lossy.affected_sessions],
                ["recovered sessions",
                 clean.recovered_sessions, lossy.recovered_sessions],
                ["unrecovered sessions",
                 clean.unrecovered_sessions, lossy.unrecovered_sessions],
                ["time-to-detect max (s)",
                 round(clean.time_to_detect_s["max"], 3),
                 round(lossy.time_to_detect_s["max"], 3)],
                ["time-to-recover max (s)",
                 round(clean.time_to_recover_s["max"], 3),
                 round(lossy.time_to_recover_s["max"], 3)],
                ["install retries",
                 clean.install_retries, lossy.install_retries],
                ["install failures",
                 clean.install_failures, lossy.install_failures],
            ],
            title="E14: failure recovery under chaos",
        ),
        file=sys.stderr,
    )
    # Shape: the crash hit live sessions and every one of them failed
    # over to a healthy peer.
    assert clean.affected_sessions > 0
    assert clean.recovered_sessions == clean.affected_sessions
    assert clean.unrecovered_sessions == 0
    # Detection is bounded by liveness timeout (1.5s) + report interval
    # + the 1s expiry sweep; recovery happens in the same sweep.
    assert clean.time_to_detect_s["max"] <= 3.5
    assert clean.time_to_recover_s["max"] <= 3.5
    # Same seed => identical event log, event for event.
    assert clean.event_digest == replay.event_digest
    # A lossy control channel forces retries, but barrier-acked
    # installs keep every session recoverable.
    assert lossy.install_retries > 0
    assert lossy.recovered_sessions == lossy.affected_sessions
    assert lossy.unrecovered_sessions == 0
