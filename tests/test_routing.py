"""Unit tests for two-hop routing and service-chain rule computation."""

import pytest

from repro.core.nib import HostRecord, NetworkInformationBase
from repro.core.routing import (
    PathRuleCache,
    RoutingError,
    compute_path_rules,
    drop_rule,
    source_block_rule,
)
from repro.net.packet import FlowNineTuple
from repro.openflow.actions import Output, SetDlDst, SetDlSrc


def host(mac, dpid, port, is_element=False):
    return HostRecord(mac=mac, ip=None, dpid=dpid, port=port,
                      first_seen=0.0, last_seen=0.0, is_element=is_element)


def flow(src="hA", dst="hB"):
    return FlowNineTuple(
        vlan=None, dl_src=src, dl_dst=dst, dl_type=0x0800,
        nw_src="10.0.0.1", nw_dst="10.0.0.2", nw_proto=6,
        tp_src=1000, tp_dst=80,
    )


@pytest.fixture
def nib():
    """Three switches, uplink port 1 each, full mesh."""
    nib = NetworkInformationBase()
    for a in (1, 2, 3):
        nib.add_switch(a, f"sw{a}", (1, 2, 3), now=0.0)
    for a in (1, 2, 3):
        for b in (1, 2, 3):
            if a != b:
                nib.learn_link(a, 1, b, 1, now=0.0)
    return nib


class TestDirectPath:
    def test_two_rules_cross_switch(self, nib):
        src, dst = host("hA", 1, 2), host("hB", 2, 3)
        rules = compute_path_rules(nib, flow(), src, dst, cookie=9)
        assert len(rules) == 2
        ingress, egress = rules
        assert ingress.dpid == 1
        assert ingress.match.in_port == 2
        assert ingress.actions == (Output(1),)  # out the uplink
        assert ingress.send_flow_removed
        assert ingress.cookie == 9
        assert egress.dpid == 2
        assert egress.match.in_port == 1  # in from the uplink
        assert egress.actions == (Output(3),)
        assert not egress.send_flow_removed

    def test_single_rule_same_switch(self, nib):
        src, dst = host("hA", 1, 2), host("hB", 1, 3)
        rules = compute_path_rules(nib, flow(), src, dst)
        assert len(rules) == 1
        assert rules[0].actions == (Output(3),)
        assert rules[0].send_flow_removed

    def test_no_rewrites_on_direct_path(self, nib):
        src, dst = host("hA", 1, 2), host("hB", 2, 3)
        for rule in compute_path_rules(nib, flow(), src, dst):
            assert not any(isinstance(a, SetDlDst) for a in rule.actions)


class TestSteering:
    def test_paper_four_rules(self, nib):
        """Section IV.A: exactly the 4 entries i)..iv)."""
        src, dst = host("hA", 1, 2), host("hB", 3, 2)
        element = host("eX", 2, 2, is_element=True)
        rules = compute_path_rules(nib, flow(), src, dst, waypoints=[element])
        assert len(rules) == 4
        r1, r2, r3, r4 = rules
        # i) ingress: rewrite to the element, out the uplink.
        assert r1.dpid == 1 and r1.match.in_port == 2
        assert r1.match.dl_dst == "hB"  # matches the *original* flow
        assert r1.actions == (SetDlDst("eX"), Output(1))
        # ii) element switch, from the fabric, to the element port.
        assert r2.dpid == 2 and r2.match.in_port == 1
        assert r2.match.dl_dst == "eX"
        assert r2.actions == (Output(2),)
        # iii) element switch, from the element: restore the dst,
        # relabel the src as the element (so fabric MAC learning sees
        # the frame coming from where it actually is), send on.
        assert r3.dpid == 2 and r3.match.in_port == 2
        assert r3.match.dl_dst == "eX"
        assert r3.actions == (SetDlSrc("eX"), SetDlDst("hB"), Output(1))
        # iv) egress switch: restore the original source, deliver.
        assert r4.dpid == 3 and r4.match.in_port == 1
        assert r4.match.dl_dst == "hB"
        assert r4.match.dl_src == "eX"
        assert r4.actions == (SetDlSrc("hA"), Output(2))

    def test_only_ingress_reports_removal(self, nib):
        src, dst = host("hA", 1, 2), host("hB", 3, 2)
        element = host("eX", 2, 2)
        rules = compute_path_rules(nib, flow(), src, dst, waypoints=[element])
        assert [r.send_flow_removed for r in rules] == [True, False, False, False]

    def test_element_on_ingress_switch(self, nib):
        src, dst = host("hA", 1, 2), host("hB", 3, 2)
        element = host("eX", 1, 3)
        rules = compute_path_rules(nib, flow(), src, dst, waypoints=[element])
        # hop1 local (1 rule) + hop2 cross-switch (2 rules)
        assert len(rules) == 3
        assert rules[0].actions == (SetDlDst("eX"), Output(3))

    def test_element_on_egress_switch(self, nib):
        src, dst = host("hA", 1, 2), host("hB", 3, 2)
        element = host("eX", 3, 3)
        rules = compute_path_rules(nib, flow(), src, dst, waypoints=[element])
        # hop1 cross-switch (2 rules) + hop2 local (1 rule)
        assert len(rules) == 3
        assert rules[-1].actions == (SetDlDst("hB"), Output(2))
        # Local final hop: src never rewritten, nothing to restore.
        assert not any(isinstance(a, SetDlSrc) for a in rules[-1].actions)

    def test_two_waypoint_chain(self, nib):
        src, dst = host("hA", 1, 2), host("hB", 3, 2)
        e1, e2 = host("e1", 2, 2), host("e2", 2, 3)
        rules = compute_path_rules(nib, flow(), src, dst,
                                   waypoints=[e1, e2])
        # hop1 cross (2) + hop2 local on sw2 (1) + hop3 cross (2)
        assert len(rules) == 5
        labels = [rule.match.dl_dst for rule in rules]
        assert labels == ["hB", "e1", "e1", "e2", "hB"]
        # Fabric-crossing legs after a waypoint carry the waypoint's
        # source MAC; the final egress restores the original.
        assert rules[-2].actions[0] == SetDlSrc("e2")
        assert rules[-1].actions[0] == SetDlSrc("hA")

    def test_cookie_propagated_to_all_rules(self, nib):
        src, dst = host("hA", 1, 2), host("hB", 3, 2)
        element = host("eX", 2, 2)
        rules = compute_path_rules(nib, flow(), src, dst,
                                   waypoints=[element], cookie=77)
        assert all(rule.cookie == 77 for rule in rules)


class TestErrors:
    def test_unknown_uplink_raises(self):
        nib = NetworkInformationBase()
        nib.add_switch(1, "a", (1,), now=0.0)
        nib.add_switch(2, "b", (1,), now=0.0)
        with pytest.raises(RoutingError):
            compute_path_rules(nib, flow(), host("hA", 1, 2), host("hB", 2, 2))


class TestPathRuleCache:
    def test_hit_returns_equal_rules(self, nib):
        cache = PathRuleCache()
        src, dst = host("hA", 1, 2), host("hB", 2, 3)
        first = cache.path_rules(nib, flow(), src, dst, cookie=9)
        again = cache.path_rules(nib, flow(), src, dst, cookie=9)
        assert again == first
        assert (cache.hits, cache.misses) == (1, 1)
        assert first == compute_path_rules(nib, flow(), src, dst, cookie=9)

    def test_hit_recookies_cached_rules(self, nib):
        """Rules embed the session id as their cookie; a cache hit for
        a new session must not leak the old session's cookie."""
        cache = PathRuleCache()
        src, dst = host("hA", 1, 2), host("hB", 3, 2)
        element = host("eX", 2, 2, is_element=True)
        cache.path_rules(nib, flow(), src, dst, waypoints=[element], cookie=7)
        rules = cache.path_rules(nib, flow(), src, dst, waypoints=[element],
                                 cookie=8)
        assert cache.hits == 1
        assert all(rule.cookie == 8 for rule in rules)

    def test_host_move_changes_key(self, nib):
        """The key embeds host *locations*, so a moved host misses even
        though the MAC (and flow) are unchanged."""
        cache = PathRuleCache()
        dst = host("hB", 2, 3)
        cache.path_rules(nib, flow(), host("hA", 1, 2), dst)
        rules = cache.path_rules(nib, flow(), host("hA", 3, 2), dst)
        assert cache.misses == 2 and cache.hits == 0
        assert rules[0].dpid == 3

    def test_clear_counts_only_nonempty(self, nib):
        cache = PathRuleCache()
        cache.clear()
        assert cache.invalidations == 0
        cache.path_rules(nib, flow(), host("hA", 1, 2), host("hB", 2, 3))
        cache.clear()
        assert cache.invalidations == 1 and len(cache) == 0
        assert cache.misses == 1

    def test_lru_eviction_bounds_size(self, nib):
        cache = PathRuleCache(max_entries=2)
        src = host("hA", 1, 2)
        for port in (3, 4, 5):
            cache.path_rules(nib, flow(), src, host("hB", 2, port))
        assert len(cache) == 2
        # The oldest key (port 3) was evicted: probing it misses.
        cache.path_rules(nib, flow(), src, host("hB", 2, 3))
        assert cache.misses == 4 and cache.hits == 0

    def test_routing_errors_never_cached(self):
        bare = NetworkInformationBase()
        bare.add_switch(1, "a", (1,), now=0.0)
        bare.add_switch(2, "b", (1,), now=0.0)
        cache = PathRuleCache()
        with pytest.raises(RoutingError):
            cache.path_rules(bare, flow(), host("hA", 1, 2), host("hB", 2, 2))
        assert len(cache) == 0


class TestDropRules:
    def test_drop_rule_is_high_priority_empty_actions(self):
        rule = drop_rule(flow(), host("hA", 1, 2), cookie=5)
        assert rule.dpid == 1
        assert rule.actions == ()
        assert rule.priority > 100
        assert rule.match.in_port == 2
        assert rule.match.dl_src == "hA"
        assert rule.cookie == 5

    def test_source_block_wildcards_everything_but_src(self):
        rule = source_block_rule("hA", host("hA", 1, 2))
        assert rule.match.dl_src == "hA"
        assert rule.match.dl_dst is None
        assert rule.match.nw_src is None
        assert rule.priority > drop_rule(flow(), host("hA", 1, 2)).priority
