"""Multi-tenant (VLAN work-zone) scenarios.

The paper speaks throughout of "network tenants or users" and includes
the VLAN id in the 9-tuple; these tests exercise per-tenant policies:
VLAN-tagged hosts, tenant-scoped steering, and tenant isolation
enforced centrally instead of by "separating VLANs" in the fabric
(the complicated mechanism the paper's Section IV.A criticizes).
"""


from repro import Policy, PolicyTable, build_livesec_network
from repro.core.policy import FlowSelector, PolicyAction
from repro.workloads import CbrUdpFlow

GATEWAY_IP = "10.255.255.254"

TENANT_A = 10
TENANT_B = 20


def tagged_network(policies=None):
    net = build_livesec_network(
        topology="linear", policies=policies, num_as=2, hosts_per_as=2,
    )
    # Two tenants interleaved across the switches.
    net.host("h1_1").vlan = TENANT_A
    net.host("h2_1").vlan = TENANT_A
    net.host("h1_2").vlan = TENANT_B
    net.host("h2_2").vlan = TENANT_B
    net.start()
    return net


class TestVlanPlumbing:
    def test_tagged_frames_carry_vlan_end_to_end(self):
        net = tagged_network()
        src = net.host("h1_1")
        dst = net.host("h2_1")
        seen = []
        dst.default_handler = lambda host, frame: seen.append(frame.vlan)
        src.send_udp(dst.ip, 1, 9000)
        net.run(1.0)
        assert seen == [TENANT_A]

    def test_session_nine_tuple_includes_vlan(self):
        net = tagged_network()
        src = net.host("h1_1")
        flow = CbrUdpFlow(net.sim, src, GATEWAY_IP, rate_bps=2e6,
                          duration_s=0.5)
        flow.start()
        net.run(1.0)
        session = next(iter(net.controller.sessions))
        assert session.flow.vlan == TENANT_A


class TestTenantPolicies:
    def test_policy_scoped_to_one_tenant(self):
        """Tenant A's Internet traffic is dropped; tenant B's flows."""
        policies = PolicyTable()
        policies.add(Policy(
            name="tenant-a-no-internet",
            selector=FlowSelector(vlan=TENANT_A, dst_ip=GATEWAY_IP),
            action=PolicyAction.DROP,
        ))
        net = tagged_network(policies)
        flow_a = CbrUdpFlow(net.sim, net.host("h1_1"), GATEWAY_IP,
                            rate_bps=2e6, duration_s=1.0)
        flow_b = CbrUdpFlow(net.sim, net.host("h1_2"), GATEWAY_IP,
                            rate_bps=2e6, duration_s=1.0)
        flow_a.start()
        flow_b.start()
        net.run(2.0)
        assert flow_a.delivered_bytes(net.gateway) == 0
        assert flow_b.delivered_bytes(net.gateway) > 0

    def test_tenant_isolation_without_fabric_vlans(self):
        """Cross-tenant traffic is blocked centrally: the 'separating
        VLANs' plumbing the paper criticizes becomes one policy row."""
        policies = PolicyTable()
        policies.add(Policy(
            name="isolate-tenant-a-from-b",
            selector=FlowSelector(vlan=TENANT_A, dst_ip_prefix="10.0."),
            action=PolicyAction.ALLOW,
            priority=100,
        ))
        # More specific: A -> B's hosts dropped.
        net = build_livesec_network(topology="linear", num_as=2,
                                    hosts_per_as=2)
        a_src = net.host("h1_1")
        a_dst = net.host("h2_1")
        b_dst = net.host("h2_2")
        a_src.vlan = TENANT_A
        a_dst.vlan = TENANT_A
        b_dst.vlan = TENANT_B
        net.controller.policies.add(Policy(
            name="block-a-to-b",
            selector=FlowSelector(vlan=TENANT_A, dst_ip=b_dst.ip),
            action=PolicyAction.DROP,
            priority=200,
        ))
        net.start()
        same_tenant = CbrUdpFlow(net.sim, a_src, a_dst.ip, rate_bps=2e6,
                                 duration_s=1.0)
        cross_tenant = CbrUdpFlow(net.sim, a_src, b_dst.ip, rate_bps=2e6,
                                  duration_s=1.0, sport=25000)
        same_tenant.start()
        cross_tenant.start()
        net.run(2.0)
        assert same_tenant.delivered_bytes(a_dst) > 0
        assert cross_tenant.delivered_bytes(b_dst) == 0

    def test_per_tenant_service_chain(self):
        """Only tenant A's traffic pays the IDS detour."""
        policies = PolicyTable()
        policies.add(Policy(
            name="tenant-a-ids",
            selector=FlowSelector(vlan=TENANT_A, dst_ip=GATEWAY_IP),
            action=PolicyAction.CHAIN,
            service_chain=("ids",),
        ))
        net = build_livesec_network(
            topology="linear", policies=policies, num_as=2, hosts_per_as=2,
            elements=[("ids", 1)],
        )
        net.host("h1_1").vlan = TENANT_A
        net.host("h1_2").vlan = TENANT_B
        net.start()
        CbrUdpFlow(net.sim, net.host("h1_2"), GATEWAY_IP, rate_bps=2e6,
                   duration_s=1.0).start()
        net.run(2.0)
        untouched = net.elements[0].processed_packets
        assert untouched == 0, "tenant B must not be steered"
        CbrUdpFlow(net.sim, net.host("h1_1"), GATEWAY_IP, rate_bps=2e6,
                   duration_s=1.0, sport=26000).start()
        net.run(2.0)
        assert net.elements[0].processed_packets > 0
