"""Failure injection: the reliability claims of Sections III.B/III.C.

* Legacy-Switching redundancy is transparent to LiveSec: when one of
  two redundant cores dies, discovery re-converges on the surviving
  paths and traffic recovers (Section III.B "Reliability").
* AS-switch channel loss removes the switch (and its hosts) from the
  NIB; reconnecting restores it.
* User/VM mobility: a wireless user re-associating with another AP is
  re-learned at the new location and keeps communicating
  (Section III.D.1 mobility).
"""


from repro import build_livesec_network
from repro.core.events import EventKind
from repro.workloads import CbrUdpFlow

GATEWAY_IP = "10.255.255.254"


def _fail_node_links(node):
    for port in node.attached_ports():
        port.link.set_up(False)


class TestCoreFailover:
    def test_traffic_survives_core_death(self):
        """Redundant cores: kill the primary, traffic must recover once
        discovery re-converges and stale flow entries idle out."""
        net = build_livesec_network(
            topology="star", num_as=3, hosts_per_as=1,
            redundant_core=True, idle_timeout_s=2.0,
        )
        net.start()
        src = net.host("h2_1")
        flow = CbrUdpFlow(net.sim, src, GATEWAY_IP, rate_bps=5e6)
        flow.start()
        net.run(2.0)
        assert flow.delivered_bytes(net.gateway) > 0

        _fail_node_links(net.topology.legacy[0])  # kill core-a
        # Recovery budget: LLDP link expiry (~3.5 s) + idle timeout
        # (2 s) + re-setup.
        net.run(10.0)
        recovered_from = flow.delivered_bytes(net.gateway)
        net.run(3.0)
        recovered_to = flow.delivered_bytes(net.gateway)
        flow.stop()
        delivered = recovered_to - recovered_from
        assert delivered > 5e6 * 3.0 / 8 * 0.5, (
            f"traffic did not recover after core failure ({delivered}B in 3s)"
        )

    def test_single_core_death_is_fatal_without_redundancy(self):
        net = build_livesec_network(
            topology="star", num_as=3, hosts_per_as=1,
            redundant_core=False, idle_timeout_s=2.0,
        )
        net.start()
        src = net.host("h2_1")
        flow = CbrUdpFlow(net.sim, src, GATEWAY_IP, rate_bps=5e6)
        flow.start()
        net.run(2.0)
        _fail_node_links(net.topology.legacy[0])
        net.run(8.0)
        stalled_from = flow.delivered_bytes(net.gateway)
        net.run(3.0)
        flow.stop()
        assert flow.delivered_bytes(net.gateway) == stalled_from


class TestChannelLoss:
    def test_switch_leave_cleans_nib(self, small_net):
        channel = small_net.channels[1]
        hosts_on_1 = [
            r.mac for r in small_net.controller.nib.hosts.values()
            if r.dpid == 1
        ]
        assert hosts_on_1
        channel.disconnect()
        small_net.run(1.0)
        assert 1 not in small_net.controller.nib.switches
        for mac in hosts_on_1:
            assert small_net.controller.nib.host_by_mac(mac) is None
        leaves = small_net.controller.log.query(kind=EventKind.SWITCH_LEAVE)
        assert leaves and leaves[0].data["dpid"] == 1

    def test_reconnect_restores_switch(self, small_net):
        channel = small_net.channels[1]
        channel.disconnect()
        small_net.run(1.0)
        channel.connect()
        small_net.run(3.0)
        assert 1 in small_net.controller.nib.switches
        assert small_net.controller.nib.is_full_mesh()
        # Hosts re-announce (here: manually, as a real NIC would on
        # carrier regain) and traffic works again.
        src = small_net.host("h1_1")
        src.announce()
        small_net.run(1.0)
        flow = CbrUdpFlow(small_net.sim, src, GATEWAY_IP, rate_bps=4e6,
                          duration_s=1.0)
        flow.start()
        small_net.run(2.0)
        assert flow.delivered_bytes(small_net.gateway) > 0


class TestMobility:
    def test_wireless_user_roams_between_aps(self):
        net = build_livesec_network(
            topology="fit", num_ovs=2, num_aps=2,
            wired_users=0, wireless_users=1,
        )
        net.start()
        station = net.host("wifi1")
        old_ap = net.topology.aps[0]
        new_ap = net.topology.aps[1]
        record = net.controller.nib.host_by_mac(station.mac)
        assert record.dpid == old_ap.dpid

        # Disassociate and re-associate: tear the wireless link down,
        # attach to the other AP, announce (what a real supplicant's
        # reconnection triggers).
        station_port = station.port(1)
        old_link = station_port.link
        ap_side = old_link.other_end(station_port)
        old_link.set_up(False)
        station_port.link = None
        ap_side.link = None
        new_ap.attach_station(station)
        station.announce()
        net.run(1.0)

        record = net.controller.nib.host_by_mac(station.mac)
        assert record.dpid == new_ap.dpid
        flow = CbrUdpFlow(net.sim, station, GATEWAY_IP, rate_bps=2e6,
                          duration_s=1.5)
        flow.start()
        net.run(3.0)
        assert flow.delivered_bytes(net.gateway) > 0


class TestControllerRestart:
    def test_new_controller_rebuilds_state(self):
        """Controller crash + cold restart: a fresh controller attached
        to the same switches re-learns the topology via LLDP, hosts via
        their (re-)announcements, elements via their online messages --
        and traffic flows again."""
        from repro.core.controller import LiveSecController
        from repro.core.visualization import MonitoringComponent
        from repro.openflow.channel import SecureChannel

        net = build_livesec_network(
            topology="linear", num_as=2, hosts_per_as=1,
            elements=[("ids", 1)],
        )
        net.start()
        old_controller = net.controller
        assert old_controller.nib.summary()["hosts"] >= 3

        # Crash: every channel drops.
        for channel in net.channels.values():
            channel.disconnect()
        net.run(0.5)

        # Cold restart: a brand-new controller process takes over.
        new_controller = LiveSecController(net.sim)
        MonitoringComponent(new_controller.log)
        for switch in net.topology.all_openflow_switches():
            SecureChannel(net.sim, switch, new_controller).connect()
        net.controller = new_controller
        net.run(2.0)  # LLDP re-converges
        # Hosts re-announce (carrier flap / periodic gratuitous ARP).
        for host in net.topology.hosts:
            host.announce()
        net.run(3.0)  # element daemons also report within 0.5 s

        summary = new_controller.nib.summary()
        assert summary["full_mesh"]
        assert summary["hosts"] >= 3
        # Traffic works under the new controller.
        flow = CbrUdpFlow(net.sim, net.host("h1_1"), GATEWAY_IP,
                          rate_bps=3e6, duration_s=1.0)
        flow.start()
        net.run(2.0)
        assert flow.delivered_bytes(net.gateway) > 0

    def test_element_reregisters_with_new_controller(self):
        """Element certificates derive from the shared secret, so a
        restarted controller (same secret) accepts the running fleet."""
        from repro.core.controller import LiveSecController
        from repro.openflow.channel import SecureChannel

        net = build_livesec_network(
            topology="linear", num_as=2, hosts_per_as=1,
            elements=[("ids", 1)],
        )
        net.start()
        for channel in net.channels.values():
            channel.disconnect()
        new_controller = LiveSecController(net.sim)
        for switch in net.topology.all_openflow_switches():
            SecureChannel(net.sim, switch, new_controller).connect()
        net.run(3.0)
        assert new_controller.registry.summary()["online"] == 1
