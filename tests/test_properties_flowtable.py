"""Property-based tests for the flow table and link layer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import packet as pkt
from repro.net.node import Node, connect
from repro.net.simulator import Simulator
from repro.openflow.actions import Output
from repro.openflow.flowtable import FlowEntry, FlowTable
from repro.openflow.match import Match


def frame(tp_dst=80):
    return pkt.make_tcp("m1", "m2", "1.1.1.1", "2.2.2.2", 1000, tp_dst)


entry_specs = st.lists(
    st.tuples(
        st.integers(0, 1000),  # priority
        st.one_of(st.none(), st.integers(0, 3)),  # tp_dst selector bucket
        st.integers(1, 8),  # output port
    ),
    min_size=1,
    max_size=15,
)


class TestFlowTableProperties:
    @given(entry_specs)
    @settings(max_examples=60)
    def test_lookup_returns_max_priority_matching_entry(self, specs):
        table = FlowTable()
        for priority, bucket, port in specs:
            match = Match() if bucket is None else Match(tp_dst=80 + bucket)
            table.add(
                FlowEntry(match=match, priority=priority,
                          actions=(Output(port),)),
                now=0.0,
            )
        probe = frame(tp_dst=80)
        hit = table.lookup(probe, 1, now=1.0)
        matching = [
            (priority, port)
            for priority, bucket, port in specs
            if bucket is None or bucket == 0
        ]
        if not matching:
            assert hit is None
        else:
            # Later adds replace identical (match, priority) rows, so
            # the hit's priority is the max; its port must belong to
            # some entry at that priority.
            best = max(p for p, __ in matching)
            assert hit is not None
            assert hit.priority == best

    @given(st.lists(st.integers(0, 3), min_size=1, max_size=10))
    @settings(max_examples=40)
    def test_delete_all_empties_table(self, buckets):
        table = FlowTable()
        for index, bucket in enumerate(buckets):
            table.add(
                FlowEntry(match=Match(tp_dst=80 + bucket), priority=index,
                          actions=(Output(1),)),
                now=0.0,
            )
        removed = table.delete(Match())
        assert len(table) == 0
        # Identical (match, priority) pairs were replaced on add, so
        # removed counts unique pairs.
        assert len(removed) == len({(80 + b, i)
                                    for i, b in enumerate(buckets)})

    @given(
        st.floats(0.1, 10.0),  # idle timeout
        st.lists(st.floats(0.0, 30.0), min_size=1, max_size=10),  # hits
    )
    @settings(max_examples=40)
    def test_entry_alive_iff_recently_used(self, idle, hit_times):
        table = FlowTable()
        table.add(FlowEntry(match=Match(), idle_timeout=idle,
                            actions=(Output(1),)), now=0.0)
        last_use = 0.0
        alive = True
        for t in sorted(hit_times):
            expected_alive = alive and (t - last_use) < idle
            hit = table.lookup(frame(), 1, now=t)
            assert (hit is not None) == expected_alive
            if expected_alive:
                last_use = t
            else:
                alive = False  # expired entries never come back


class TestLinkProperties:
    class Sink(Node):
        def __init__(self, sim, name):
            super().__init__(sim, name)
            self.arrivals = []

        def receive(self, f, in_port):
            self.arrivals.append(self.sim.now)

    @given(
        st.lists(st.integers(64, 9000), min_size=1, max_size=30),
        st.floats(1e5, 1e9),
        st.floats(0.0, 0.01),
    )
    @settings(max_examples=40)
    def test_fifo_order_and_capacity_bound(self, sizes, bandwidth, delay):
        sim = Simulator()
        a = self.Sink(sim, "a")
        b = self.Sink(sim, "b")
        connect(sim, a, b, bandwidth_bps=bandwidth, delay_s=delay,
                queue_packets=1000)
        for size in sizes:
            a.send(pkt.make_udp("m1", "m2", "1.1.1.1", "2.2.2.2", 1, 2,
                                size=size), 1)
        sim.run()
        assert len(b.arrivals) == len(sizes)
        # FIFO: arrivals are non-decreasing in time.
        assert b.arrivals == sorted(b.arrivals)
        # Last arrival >= total serialization + propagation.
        total_tx = sum(size * 8 / bandwidth for size in sizes)
        assert b.arrivals[-1] >= total_tx + delay - 1e-9


class TestTcpProperties:
    """Property tests for the reliable transport."""


    @given(
        st.lists(st.binary(min_size=1, max_size=5000), min_size=1,
                 max_size=12),
        st.floats(1e6, 1e9),
    )
    @settings(max_examples=30, deadline=None)
    def test_arbitrary_writes_reassemble_exactly(self, chunks, bandwidth):
        from repro.net.host import Host
        from repro.net.tcp import TcpConnection, TcpListener

        sim = Simulator()
        client = Host(sim, "c", "00:00:00:00:00:01", "10.0.0.1")
        server = Host(sim, "s", "00:00:00:00:00:02", "10.0.0.2")
        connect(sim, client, server, bandwidth_bps=bandwidth, delay_s=1e-4,
                queue_packets=10_000)
        received = []
        TcpListener(server, 80,
                    on_receive=lambda conn, data: received.append(data))

        def on_established(conn):
            for chunk in chunks:
                conn.send(chunk)
            conn.close()

        TcpConnection.connect(client, server.ip, 80,
                              on_established=on_established)
        sim.run(until=120.0)
        assert b"".join(received) == b"".join(chunks)

    @given(st.integers(1, 40), st.integers(2, 30))
    @settings(max_examples=20, deadline=None)
    def test_lossy_queue_still_exact(self, segments, queue_packets):
        from repro.net.host import Host
        from repro.net.tcp import MSS, TcpConnection, TcpListener

        sim = Simulator()
        client = Host(sim, "c", "00:00:00:00:00:01", "10.0.0.1")
        server = Host(sim, "s", "00:00:00:00:00:02", "10.0.0.2")
        connect(sim, client, server, bandwidth_bps=5e6, delay_s=1e-3,
                queue_packets=queue_packets)
        received = []
        TcpListener(server, 80,
                    on_receive=lambda conn, data: received.append(data))
        blob = bytes(range(256)) * (segments * MSS // 256)
        TcpConnection.connect(client, server.ip, 80,
                              on_established=lambda c: c.send(blob))
        sim.run(until=300.0)
        assert b"".join(received) == blob
