"""Property-based tests for the flow table and link layer."""

import dataclasses
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import packet as pkt
from repro.net.node import Node, connect
from repro.net.simulator import Simulator
from repro.openflow.actions import Output
from repro.openflow.flowtable import FlowEntry, FlowTable
from repro.openflow.match import Match


def frame(tp_dst=80):
    return pkt.make_tcp("m1", "m2", "1.1.1.1", "2.2.2.2", 1000, tp_dst)


entry_specs = st.lists(
    st.tuples(
        st.integers(0, 1000),  # priority
        st.one_of(st.none(), st.integers(0, 3)),  # tp_dst selector bucket
        st.integers(1, 8),  # output port
    ),
    min_size=1,
    max_size=15,
)


class TestFlowTableProperties:
    @given(entry_specs)
    @settings(max_examples=60)
    def test_lookup_returns_max_priority_matching_entry(self, specs):
        table = FlowTable()
        for priority, bucket, port in specs:
            match = Match() if bucket is None else Match(tp_dst=80 + bucket)
            table.add(
                FlowEntry(match=match, priority=priority,
                          actions=(Output(port),)),
                now=0.0,
            )
        probe = frame(tp_dst=80)
        hit = table.lookup(probe, 1, now=1.0)
        matching = [
            (priority, port)
            for priority, bucket, port in specs
            if bucket is None or bucket == 0
        ]
        if not matching:
            assert hit is None
        else:
            # Later adds replace identical (match, priority) rows, so
            # the hit's priority is the max; its port must belong to
            # some entry at that priority.
            best = max(p for p, __ in matching)
            assert hit is not None
            assert hit.priority == best

    @given(st.lists(st.integers(0, 3), min_size=1, max_size=10))
    @settings(max_examples=40)
    def test_delete_all_empties_table(self, buckets):
        table = FlowTable()
        for index, bucket in enumerate(buckets):
            table.add(
                FlowEntry(match=Match(tp_dst=80 + bucket), priority=index,
                          actions=(Output(1),)),
                now=0.0,
            )
        removed = table.delete(Match())
        assert len(table) == 0
        # Identical (match, priority) pairs were replaced on add, so
        # removed counts unique pairs.
        assert len(removed) == len({(80 + b, i)
                                    for i, b in enumerate(buckets)})

    @given(
        st.floats(0.1, 10.0),  # idle timeout
        st.lists(st.floats(0.0, 30.0), min_size=1, max_size=10),  # hits
    )
    @settings(max_examples=40)
    def test_entry_alive_iff_recently_used(self, idle, hit_times):
        table = FlowTable()
        table.add(FlowEntry(match=Match(), idle_timeout=idle,
                            actions=(Output(1),)), now=0.0)
        last_use = 0.0
        alive = True
        for t in sorted(hit_times):
            expected_alive = alive and (t - last_use) < idle
            hit = table.lookup(frame(), 1, now=t)
            assert (hit is not None) == expected_alive
            if expected_alive:
                last_use = t
            else:
                alive = False  # expired entries never come back


class TestIndexedLinearEquivalence:
    """The indexed ``lookup`` must be observably identical to the
    pre-index reference scan (``_lookup_linear``) on every frame, for
    tables mixing priorities, wildcards and timeouts.

    Two tables receive the exact same mutation stream; one is probed
    through the index, the other through the linear oracle.  Seeded
    ``random`` (not hypothesis) so the run is deterministic and the
    case count is guaranteed: >= 1000 table/frame combinations.
    """

    MACS = ("m1", "m2", "m3", "m4")
    IPS = ("1.1.1.1", "2.2.2.2", "3.3.3.3", "4.4.4.4")
    PORTS = (80, 443, 1000)
    VLANS = (None, None, None, 7)  # mostly untagged, like the fabric

    def _random_frame(self, rng):
        kind = rng.choice(("tcp", "tcp", "udp", "icmp", "arp"))
        src, dst = rng.choice(self.MACS), rng.choice(self.MACS)
        if kind == "arp":
            return pkt.make_arp_request(src, rng.choice(self.IPS),
                                        rng.choice(self.IPS))
        nw_src, nw_dst = rng.choice(self.IPS), rng.choice(self.IPS)
        if kind == "icmp":
            return pkt.make_icmp_echo(src, dst, nw_src, nw_dst)
        maker = pkt.make_tcp if kind == "tcp" else pkt.make_udp
        return maker(src, dst, nw_src, nw_dst,
                     rng.choice(self.PORTS), rng.choice(self.PORTS),
                     vlan=rng.choice(self.VLANS))

    def _random_match(self, rng):
        roll = rng.random()
        if roll < 0.45:
            # Exact 9-tuple + in_port, like every steering rule.
            return Match.from_frame(self._random_frame(rng),
                                    in_port=rng.randint(1, 3))
        if roll < 0.55:
            return Match()  # catch-all
        if roll < 0.7:
            # Source block: in_port + dl_src only.
            return Match(in_port=rng.randint(1, 3),
                         dl_src=rng.choice(self.MACS))
        # Arbitrary partial wildcard over a concrete frame's fields.
        exact = Match.from_frame(self._random_frame(rng),
                                 in_port=rng.randint(1, 3))
        kept = {}
        for f in dataclasses.fields(exact):
            value = getattr(exact, f.name)
            if value is not None and rng.random() < 0.6:
                kept[f.name] = value
        return Match(**kept)

    def _random_entry(self, rng):
        return FlowEntry(
            match=self._random_match(rng),
            actions=() if rng.random() < 0.2 else (Output(rng.randint(1, 8)),),
            priority=rng.choice((50, 100, 100, 100, 200)),
            idle_timeout=rng.choice((0.0, 0.0, 0.5, 2.0)),
            hard_timeout=rng.choice((0.0, 0.0, 1.0, 3.0)),
        )

    @staticmethod
    def _signature(entry):
        return None if entry is None else (
            entry.match, entry.priority, entry.actions,
            entry.packets, entry.bytes, entry.last_used_at,
        )

    def test_indexed_lookup_equivalent_to_linear_scan(self):
        cases = 0
        for seed in range(40):
            rng = random.Random(seed)
            indexed, reference = FlowTable(), FlowTable()
            now = 0.0
            for _ in range(rng.randint(2, 5)):
                # A batch of mutations, mirrored into both tables
                # (entries are per-table clones: counters diverge
                # otherwise).
                for _ in range(rng.randint(1, 12)):
                    entry = self._random_entry(rng)
                    indexed.add(dataclasses.replace(entry), now=now)
                    reference.add(dataclasses.replace(entry), now=now)
                if rng.random() < 0.3:
                    victim = self._random_match(rng)
                    indexed.delete(victim)
                    reference.delete(victim)
                if rng.random() < 0.3:
                    # The indexed table evicts expired entries the
                    # moment a lookup observes them; the reference only
                    # drops them on sweep.  MODIFY counts resident
                    # entries, so sweep both before comparing.
                    indexed.expire(now)
                    reference.expire(now)
                    target = self._random_match(rng)
                    actions = (Output(rng.randint(1, 8)),)
                    assert indexed.modify(target, actions, now=now) == \
                        reference.modify(target, actions, now=now)
                # A burst of probes at advancing times (some beyond the
                # timeouts, so expiry interleaves with matching).
                for _ in range(rng.randint(5, 15)):
                    now += rng.choice((0.0, 0.1, 0.4, 1.5))
                    probe = self._random_frame(rng)
                    in_port = rng.randint(1, 3)
                    hit = indexed.lookup(probe, in_port, now)
                    oracle = reference._lookup_linear(probe, in_port, now)
                    assert self._signature(hit) == self._signature(oracle), (
                        f"seed={seed} now={now} probe={probe}"
                    )
                    cases += 1
                # The tables' live contents stay identical (the indexed
                # one also evicted every expired entry it observed).
                live = {(e.match, e.priority) for e in indexed}
                assert live == {
                    (e.match, e.priority)
                    for e in reference if not e.expired(now)
                }
                assert not any(e.expired(now) for e in indexed)
        assert cases >= 1000, f"only {cases} randomized lookups exercised"

    def test_every_steering_style_rule_is_indexable(self):
        """Exact 9-tuple+port matches (what the steering app installs)
        must all take the hash fast path, whatever the protocol."""
        rng = random.Random(1234)
        table = FlowTable()
        for _ in range(200):
            match = Match.from_frame(self._random_frame(rng),
                                     in_port=rng.randint(1, 3))
            table.add(FlowEntry(match=match, actions=(Output(1),)), now=0.0)
        assert table.wildcard_entries() == ()


class TestLinkProperties:
    class Sink(Node):
        def __init__(self, sim, name):
            super().__init__(sim, name)
            self.arrivals = []

        def receive(self, f, in_port):
            self.arrivals.append(self.sim.now)

    @given(
        st.lists(st.integers(64, 9000), min_size=1, max_size=30),
        st.floats(1e5, 1e9),
        st.floats(0.0, 0.01),
    )
    @settings(max_examples=40)
    def test_fifo_order_and_capacity_bound(self, sizes, bandwidth, delay):
        sim = Simulator()
        a = self.Sink(sim, "a")
        b = self.Sink(sim, "b")
        connect(sim, a, b, bandwidth_bps=bandwidth, delay_s=delay,
                queue_packets=1000)
        for size in sizes:
            a.send(pkt.make_udp("m1", "m2", "1.1.1.1", "2.2.2.2", 1, 2,
                                size=size), 1)
        sim.run()
        assert len(b.arrivals) == len(sizes)
        # FIFO: arrivals are non-decreasing in time.
        assert b.arrivals == sorted(b.arrivals)
        # Last arrival >= total serialization + propagation.
        total_tx = sum(size * 8 / bandwidth for size in sizes)
        assert b.arrivals[-1] >= total_tx + delay - 1e-9


class TestTcpProperties:
    """Property tests for the reliable transport."""


    @given(
        st.lists(st.binary(min_size=1, max_size=5000), min_size=1,
                 max_size=12),
        st.floats(1e6, 1e9),
    )
    @settings(max_examples=30, deadline=None)
    def test_arbitrary_writes_reassemble_exactly(self, chunks, bandwidth):
        from repro.net.host import Host
        from repro.net.tcp import TcpConnection, TcpListener

        sim = Simulator()
        client = Host(sim, "c", "00:00:00:00:00:01", "10.0.0.1")
        server = Host(sim, "s", "00:00:00:00:00:02", "10.0.0.2")
        connect(sim, client, server, bandwidth_bps=bandwidth, delay_s=1e-4,
                queue_packets=10_000)
        received = []
        TcpListener(server, 80,
                    on_receive=lambda conn, data: received.append(data))

        def on_established(conn):
            for chunk in chunks:
                conn.send(chunk)
            conn.close()

        TcpConnection.connect(client, server.ip, 80,
                              on_established=on_established)
        sim.run(until=120.0)
        assert b"".join(received) == b"".join(chunks)

    @given(st.integers(1, 40), st.integers(2, 30))
    @settings(max_examples=20, deadline=None)
    def test_lossy_queue_still_exact(self, segments, queue_packets):
        from repro.net.host import Host
        from repro.net.tcp import MSS, TcpConnection, TcpListener

        sim = Simulator()
        client = Host(sim, "c", "00:00:00:00:00:01", "10.0.0.1")
        server = Host(sim, "s", "00:00:00:00:00:02", "10.0.0.2")
        connect(sim, client, server, bandwidth_bps=5e6, delay_s=1e-3,
                queue_packets=queue_packets)
        received = []
        TcpListener(server, 80,
                    on_receive=lambda conn, data: received.append(data))
        blob = bytes(range(256)) * (segments * MSS // 256)
        TcpConnection.connect(client, server.ip, 80,
                              on_established=lambda c: c.send(blob))
        sim.run(until=300.0)
        assert b"".join(received) == blob
