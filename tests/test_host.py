"""Unit tests for the end-host stack: ARP, ICMP echo, app handlers."""

import pytest

from repro.net.host import HOST_PORT, Host
from repro.net.node import connect
from repro.net.packet import IP_PROTO_TCP, IP_PROTO_UDP


@pytest.fixture
def pair(sim):
    """Two hosts wired back to back."""
    a = Host(sim, "a", "00:00:00:00:00:01", "10.0.0.1")
    b = Host(sim, "b", "00:00:00:00:00:02", "10.0.0.2")
    connect(sim, a, b, bandwidth_bps=1e9, delay_s=1e-4)
    return a, b


class TestArp:
    def test_resolution_then_delivery(self, sim, pair):
        a, b = pair
        a.send_udp(b.ip, 1000, 2000, payload=b"hi")
        sim.run()
        assert b.rx_frames == 1
        assert a.arp_table[b.ip][0] == b.mac

    def test_pending_frames_flushed_in_order(self, sim, pair):
        a, b = pair
        for index in range(3):
            a.send_udp(b.ip, 1000, 2000, payload=bytes([index]))
        sim.run()
        assert b.rx_frames == 3

    def test_single_arp_request_for_burst(self, sim, pair):
        a, b = pair
        for _ in range(5):
            a.send_udp(b.ip, 1000, 2000)
        sim.run()
        # 5 data frames + 1 ARP reply received by a; b got 1 request + 5 data
        assert b.port(1).rx_packets == 6

    def test_cached_entry_skips_arp(self, sim, pair):
        a, b = pair
        a.send_udp(b.ip, 1, 2)
        sim.run()
        before = b.port(1).rx_packets
        a.send_udp(b.ip, 1, 2)
        sim.run()
        assert b.port(1).rx_packets == before + 1  # no new ARP

    def test_arp_entry_expires(self, sim, pair):
        a, b = pair
        a.arp_timeout_s = 0.5
        a.send_udp(b.ip, 1, 2)
        sim.run()
        sim.run(until=sim.now + 1.0)
        a.send_udp(b.ip, 1, 2)
        sim.run()
        # The second send must have re-ARPed: b saw 2 requests + 2 data.
        assert b.port(1).rx_packets == 4

    def test_hosts_learn_from_requests(self, sim, pair):
        a, b = pair
        a.send_udp(b.ip, 1, 2)
        sim.run()
        assert b.arp_table[a.ip][0] == a.mac

    def test_announce_is_gratuitous(self, sim, pair):
        a, b = pair
        a.announce()
        sim.run()
        # b learns a but must not reply (it does not own a's IP).
        assert b.arp_table[a.ip][0] == a.mac
        assert a.arp_table.get(b.ip) is None


class TestIcmp:
    def test_ping_round_trip(self, sim, pair):
        a, b = pair
        a.ping(b.ip)
        sim.run()
        assert len(a.ping_rtts) == 1
        assert a.ping_rtts[0] > 0

    def test_ping_callback(self, sim, pair):
        a, b = pair
        seen = []
        a.ping(b.ip, on_reply=seen.append)
        sim.run()
        assert seen == a.ping_rtts

    def test_multiple_pings_tracked_independently(self, sim, pair):
        a, b = pair
        a.ping(b.ip)
        a.ping(b.ip)
        sim.run()
        assert len(a.ping_rtts) == 2


class TestApps:
    def test_handler_by_proto_and_port(self, sim, pair):
        a, b = pair
        got = []
        b.on_app(IP_PROTO_UDP, 2000, lambda host, frame: got.append(frame))
        a.send_udp(b.ip, 1000, 2000, payload=b"data")
        a.send_udp(b.ip, 1000, 3000, payload=b"other")
        sim.run()
        assert len(got) == 1
        assert got[0].app_payload() == b"data"

    def test_default_handler_catches_rest(self, sim, pair):
        a, b = pair
        rest = []
        b.default_handler = lambda host, frame: rest.append(frame)
        a.send_tcp(b.ip, 1, 80)
        sim.run()
        assert len(rest) == 1

    def test_tcp_and_udp_handlers_distinct(self, sim, pair):
        a, b = pair
        tcp_hits, udp_hits = [], []
        b.on_app(IP_PROTO_TCP, 80, lambda h, f: tcp_hits.append(f))
        b.on_app(IP_PROTO_UDP, 80, lambda h, f: udp_hits.append(f))
        a.send_tcp(b.ip, 1, 80)
        a.send_udp(b.ip, 1, 80)
        sim.run()
        assert len(tcp_hits) == 1 and len(udp_hits) == 1


class TestAccounting:
    def test_per_flow_byte_accounting(self, sim, pair):
        a, b = pair
        a.send_udp(b.ip, 1, 2, size=500, flow_id=7)
        a.send_udp(b.ip, 1, 2, size=300, flow_id=7)
        a.send_udp(b.ip, 1, 2, size=100, flow_id=8)
        sim.run()
        assert b.rx_bytes_by_flow[7] == 800
        assert b.rx_bytes_by_flow[8] == 100
        assert b.received_bits(7) == 6400

    def test_latency_recorded_per_frame(self, sim, pair):
        a, b = pair
        a.send_udp(b.ip, 1, 2)
        sim.run()
        assert len(b.latencies) == 1 and b.latencies[0] > 0

    def test_frames_for_other_ip_ignored(self, sim, pair):
        a, b = pair
        a.send_udp(b.ip, 1, 2)
        sim.run()
        # Craft a frame for a third IP but b's MAC: b must drop it.
        from repro.net import packet as pkt

        stray = pkt.make_udp(a.mac, b.mac, a.ip, "10.0.0.99", 1, 2)
        a.send(stray, HOST_PORT)
        sim.run()
        assert b.rx_frames == 1
