"""Unit tests for the element<->controller message codec and certs."""

import pytest

from repro.core import messages as svcmsg
from repro.net.packet import FlowNineTuple


def nine():
    return FlowNineTuple(
        vlan=None, dl_src="m1", dl_dst="m2", dl_type=0x0800,
        nw_src="10.0.0.1", nw_dst="10.0.0.2", nw_proto=6,
        tp_src=1000, tp_dst=80,
    )


class TestCertificates:
    def test_deterministic(self):
        a = svcmsg.issue_certificate("secret", "m1")
        b = svcmsg.issue_certificate("secret", "m1")
        assert a == b and len(a) == 16

    def test_mac_bound(self):
        assert svcmsg.issue_certificate("s", "m1") != \
            svcmsg.issue_certificate("s", "m2")

    def test_secret_bound(self):
        assert svcmsg.issue_certificate("s1", "m") != \
            svcmsg.issue_certificate("s2", "m")


class TestOnlineRoundtrip:
    def test_encode_decode(self):
        message = svcmsg.OnlineMessage(
            element_mac="00:00:00:00:00:05",
            certificate="cert123",
            service_type="ids",
            cpu=0.42,
            memory=0.1,
            pps=1234.5,
            active_flows=7,
        )
        decoded = svcmsg.decode(svcmsg.encode_online(message))
        assert isinstance(decoded, svcmsg.OnlineMessage)
        assert decoded.element_mac == message.element_mac
        assert decoded.service_type == "ids"
        assert decoded.cpu == pytest.approx(0.42, abs=1e-4)
        assert decoded.pps == pytest.approx(1234.5)
        assert decoded.active_flows == 7

    def test_is_service_message(self):
        message = svcmsg.OnlineMessage("m", "c", "ids", 0, 0, 0)
        assert svcmsg.is_service_message(svcmsg.encode_online(message))
        assert not svcmsg.is_service_message(b"GET / HTTP/1.1")
        assert not svcmsg.is_service_message(b"")
        assert not svcmsg.is_service_message(b"LIVESEC1")  # needs separator


class TestEventRoundtrip:
    def test_attack_report(self):
        message = svcmsg.EventReportMessage(
            element_mac="m5",
            certificate="c",
            kind="attack",
            flow=nine(),
            detail={"attack": "SQL injection", "verdict": "malicious"},
        )
        decoded = svcmsg.decode(svcmsg.encode_event(message))
        assert isinstance(decoded, svcmsg.EventReportMessage)
        assert decoded.kind == "attack"
        assert decoded.flow == nine()
        assert decoded.detail["attack"] == "SQL injection"
        assert decoded.detail["verdict"] == "malicious"

    def test_flow_with_wildcard_fields(self):
        flow = nine()._replace(tp_src=None, nw_src=None, vlan=None)
        message = svcmsg.EventReportMessage("m", "c", "protocol", flow,
                                            {"application": "http"})
        decoded = svcmsg.decode(svcmsg.encode_event(message))
        assert decoded.flow == flow

    def test_flowless_report(self):
        message = svcmsg.EventReportMessage("m", "c", "protocol", None, {})
        decoded = svcmsg.decode(svcmsg.encode_event(message))
        assert decoded.flow is None


class TestMalformed:
    @pytest.mark.parametrize("payload", [
        b"",
        b"NOTMAGIC|x|ONLINE",
        b"LIVESEC1|cert",
        b"LIVESEC1|cert|BOGUS|mac=m",
        b"LIVESEC1|cert|ONLINE|mac=m",  # missing load fields
        b"LIVESEC1|cert|ONLINE|mac=m|type=ids|cpu=NaNope|mem=0|pps=0",
        b"LIVESEC1|cert|EVENT|mac=m|kind=attack",  # missing flow
        b"LIVESEC1|cert|EVENT|mac=m|kind=attack|flow=1,2,3",  # short tuple
        b"LIVESEC1|cert|ONLINE|noequals",
        b"\xff\xfe\x00binary",
    ])
    def test_rejected(self, payload):
        with pytest.raises(svcmsg.MessageFormatError):
            svcmsg.decode(payload)


class TestStrictCodec:
    """The decode side rejects structurally valid but lying payloads."""

    GOOD = b"LIVESEC1|cert|ONLINE|mac=m|type=ids|cpu=0.5|mem=0.5|pps=10"

    @pytest.mark.parametrize("payload", [
        # Duplicate key: last-wins would let a second copy override.
        b"LIVESEC1|c|ONLINE|mac=m|mac=m2|type=ids|cpu=0|mem=0|pps=0",
        # Unknown ONLINE field.
        b"LIVESEC1|c|ONLINE|mac=m|type=ids|cpu=0|mem=0|pps=0|evil=1",
        # Unknown EVENT field (detail keys must be d.-namespaced).
        b"LIVESEC1|c|EVENT|mac=m|kind=attack|flow=-|verdict=bad",
        # Out-of-range loads.
        b"LIVESEC1|c|ONLINE|mac=m|type=ids|cpu=1.5|mem=0|pps=0",
        b"LIVESEC1|c|ONLINE|mac=m|type=ids|cpu=0|mem=-0.1|pps=0",
        b"LIVESEC1|c|ONLINE|mac=m|type=ids|cpu=0|mem=0|pps=-5",
        b"LIVESEC1|c|ONLINE|mac=m|type=ids|cpu=nan|mem=0|pps=0",
        b"LIVESEC1|c|ONLINE|mac=m|type=ids|cpu=inf|mem=0|pps=0",
        b"LIVESEC1|c|ONLINE|mac=m|type=ids|cpu=0|mem=0|pps=0|flows=-1",
        # Flow tuple with a non-numeric port.
        b"LIVESEC1|c|EVENT|mac=m|kind=x|flow=,a,b,2048,,,,,port",
    ])
    def test_rejected(self, payload):
        with pytest.raises(svcmsg.MessageFormatError):
            svcmsg.decode(payload)

    def test_boundary_values_accepted(self):
        payload = b"LIVESEC1|c|ONLINE|mac=m|type=ids|cpu=1.0|mem=0.0|pps=0"
        decoded = svcmsg.decode(payload)
        assert decoded.cpu == 1.0 and decoded.memory == 0.0

    def test_online_full_round_trip_equality(self):
        message = svcmsg.OnlineMessage(
            element_mac="00:aa:bb:cc:dd:ee",
            certificate="deadbeefcafe0000",
            service_type="firewall",
            cpu=0.25,
            memory=0.75,
            pps=42.0,
            active_flows=3,
        )
        assert svcmsg.decode(svcmsg.encode_online(message)) == message


class TestCodecRegistry:
    def test_current_is_registered_under_magic(self):
        assert svcmsg.CODECS[svcmsg.MAGIC] is svcmsg.CURRENT
        assert svcmsg.CURRENT.magic == svcmsg.MAGIC

    def test_new_version_dispatches_by_magic(self):
        class V2(svcmsg.WireCodec):
            magic = b"LIVESEC2"

        svcmsg.CODECS[V2.magic] = V2()
        try:
            payload = (b"LIVESEC2|c|ONLINE|mac=m|type=ids"
                       b"|cpu=0.1|mem=0.2|pps=3")
            assert svcmsg.is_service_message(payload)
            decoded = svcmsg.decode(payload)
            assert decoded.element_mac == "m"
        finally:
            del svcmsg.CODECS[V2.magic]
        # Once deregistered, the magic is foreign again.
        assert not svcmsg.is_service_message(payload)
        with pytest.raises(svcmsg.MessageFormatError):
            svcmsg.decode(payload)
