"""Unit tests for the deployment facade."""

import pytest

from repro import build_livesec_network
from repro.net.simulator import Simulator


class TestBuild:
    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError):
            build_livesec_network(topology="torus")

    def test_unknown_element_type_rejected(self):
        net = build_livesec_network(topology="linear", num_as=2,
                                    hosts_per_as=1)
        with pytest.raises(ValueError):
            net.add_element("quantum-ids", net.topology.as_switches[0])

    def test_elements_distributed_round_robin(self):
        net = build_livesec_network(
            topology="linear", num_as=3, hosts_per_as=1,
            elements=[("ids", 3)],
        )
        dpids = set()
        for element in net.elements:
            port = element.port(1)
            dpids.add(port.peer().node.dpid)
        assert len(dpids) == 3

    def test_elements_provisioned_with_valid_certs(self):
        net = build_livesec_network(
            topology="linear", num_as=2, hosts_per_as=1,
            elements=[("ids", 1)],
        )
        element = net.elements[0]
        assert net.controller.registry.verify_certificate(
            element.mac, element.certificate)

    def test_external_simulator_accepted(self):
        sim = Simulator()
        net = build_livesec_network(sim=sim, topology="linear", num_as=2,
                                    hosts_per_as=1)
        assert net.sim is sim

    def test_invalid_on_no_element(self):
        with pytest.raises(ValueError):
            build_livesec_network(topology="linear", on_no_element="retry")


class TestLifecycle:
    def test_start_twice_rejected(self, small_net):
        with pytest.raises(RuntimeError):
            small_net.start()

    def test_start_converges_discovery(self, small_net):
        assert small_net.controller.nib.is_full_mesh()
        assert small_net.started

    def test_run_advances_clock(self, small_net):
        before = small_net.sim.now
        small_net.run(1.5)
        assert small_net.sim.now == pytest.approx(before + 1.5)

    def test_gateway_property(self, small_net):
        assert small_net.gateway.ip == "10.255.255.254"

    def test_gateway_missing_raises(self):
        net = build_livesec_network(topology="linear", num_as=2,
                                    hosts_per_as=1, with_gateway=False)
        with pytest.raises(RuntimeError):
            net.gateway

    def test_elements_of_type(self):
        net = build_livesec_network(
            topology="linear", num_as=2, hosts_per_as=1,
            elements=[("ids", 2), ("l7", 1)],
        )
        assert len(net.elements_of_type("ids")) == 2
        assert len(net.elements_of_type("l7")) == 1
        assert net.elements_of_type("virus") == []


class TestRuntimeAdditions:
    def test_add_user_at_runtime(self, small_net):
        host = small_net.add_user("late", small_net.topology.as_switches[0])
        host.announce()
        small_net.run(1.0)
        assert small_net.controller.nib.host_by_mac(host.mac) is not None

    def test_add_element_at_runtime_joins_registry(self, small_net):
        element = small_net.add_element(
            "ids", small_net.topology.as_switches[0])
        small_net.run(2.0)
        assert small_net.controller.registry.is_element(element.mac)
        assert small_net.controller.registry.online_elements("ids")

    def test_port_capacities_registered_for_monitoring(self, small_net):
        capacities = small_net.controller._port_capacity
        for switch in small_net.topology.as_switches:
            for number, port in switch.ports.items():
                if port.link is not None:
                    assert (switch.dpid, number) in capacities
