"""Property tests: the compiled policy table is observably identical
to the live table (same pattern as ``test_properties_flowtable``)."""

import random

from repro.core.policy import Policy, PolicyAction, PolicyTable, FlowSelector
from repro.core.policy_compiler import (
    PolicyIntent,
    compile_intents,
    normalize_intent,
)
from repro.net.packet import FlowNineTuple


class TestCompiledLiveEquivalence:
    """``CompiledPolicyTable.match`` must agree with
    ``PolicyTable.match`` -- winner *and* rows-scanned -- for every
    flow, over randomized intent sets mixing CIDRs, octet prefixes,
    exact IPs, ports and priorities.

    Seeded ``random`` (not hypothesis) so the run is deterministic and
    the case count is guaranteed: >= 500 table/flow combinations.
    """

    ZONES = ("10.0.0.0/16", "10.1.0.0/16", "10.1.128.0/17",
             "10.2.4.0/24", "0.0.0.0/0")
    PREFIXES = ("10.0.", "10.1", "10.2.4", "10")
    IPS = ("10.0.0.1", "10.1.0.2", "10.1.200.3", "10.2.4.9",
           "10.10.0.1", "192.168.1.1", "10.255.255.254")
    PORTS = (80, 443, 22, 8080)
    PROTOS = (6, 17)

    def _random_selector(self, rng):
        kwargs = {}
        roll = rng.random()
        if roll < 0.3:
            kwargs["src_cidr"] = rng.choice(self.ZONES)
        elif roll < 0.5:
            kwargs["src_ip_prefix"] = rng.choice(self.PREFIXES)
        elif roll < 0.6:
            kwargs["src_ip"] = rng.choice(self.IPS)
        roll = rng.random()
        if roll < 0.3:
            kwargs["dst_cidr"] = rng.choice(self.ZONES)
        elif roll < 0.5:
            kwargs["dst_ip_prefix"] = rng.choice(self.PREFIXES)
        elif roll < 0.6:
            kwargs["dst_ip"] = rng.choice(self.IPS)
        if rng.random() < 0.4:
            kwargs["nw_proto"] = rng.choice(self.PROTOS)
        if rng.random() < 0.3:
            kwargs["tp_dst"] = rng.choice(self.PORTS)
        return FlowSelector(**kwargs)

    def _random_intent(self, rng, index):
        action = rng.choice(
            (PolicyAction.ALLOW, PolicyAction.DROP, PolicyAction.CHAIN)
        )
        return PolicyIntent(
            name=f"intent-{index}",
            action=action,
            selector=self._random_selector(rng),
            service_chain=("ids",) if action is PolicyAction.CHAIN else (),
            priority=rng.choice((50, 100, 100, 100, 200)),
        )

    def _random_flow(self, rng):
        return FlowNineTuple(
            vlan=None,
            dl_src="aa:aa", dl_dst="bb:bb", dl_type=0x0800,
            nw_src=rng.choice(self.IPS),
            nw_dst=rng.choice(self.IPS),
            nw_proto=rng.choice(self.PROTOS),
            tp_src=rng.randint(1024, 65535),
            tp_dst=rng.choice(self.PORTS),
        )

    def test_compiled_match_equivalent_to_live_table(self):
        cases = 0
        for seed in range(40):
            rng = random.Random(seed)
            intents = [
                self._random_intent(rng, index)
                for index in range(rng.randint(1, 12))
            ]
            default = rng.choice((PolicyAction.ALLOW, PolicyAction.DROP))
            # The artifact (conflicts allowed: equivalence must hold for
            # messy tables too, not just verified ones)...
            compiled = compile_intents(
                intents, default_action=default
            ).table
            # ...and the live oracle, built through single-row commits
            # in intent order (incremental stable sorts == one final
            # stable sort, so the scan order must come out identical).
            live = PolicyTable(default_action=default)
            for intent in intents:
                live.begin().add(normalize_intent(intent)).commit()
            assert [p.name for p in compiled] == [p.name for p in live]
            for _ in range(15):
                probe = self._random_flow(rng)
                hit_c, scanned_c = compiled.match(probe)
                hit_l, scanned_l = live.match(probe)
                assert (hit_c is None) == (hit_l is None), (seed, probe)
                if hit_c is not None:
                    assert hit_c.name == hit_l.name, (seed, probe)
                assert scanned_c == scanned_l, (seed, probe)
                assert compiled.effective_action(probe) == \
                    live.effective_action(probe)
                cases += 1
        assert cases >= 500, f"only {cases} randomized lookups exercised"

    def test_apply_compiled_preserves_match_behavior(self):
        """Swapping an artifact into a live table keeps every lookup
        identical to querying the artifact directly."""
        cases = 0
        for seed in range(10):
            rng = random.Random(1000 + seed)
            intents = [
                self._random_intent(rng, index)
                for index in range(rng.randint(1, 8))
            ]
            compiled = compile_intents(intents).table
            live = PolicyTable()
            live.apply_compiled(compiled)
            for _ in range(10):
                probe = self._random_flow(rng)
                hit_c, scanned_c = compiled.match(probe)
                hit_l, scanned_l = live.match(probe)
                assert scanned_c == scanned_l
                assert (hit_c.name if hit_c else None) == \
                    (hit_l.name if hit_l else None)
                cases += 1
        assert cases >= 100


class TestSelectorRegressions:
    """Octet-boundary and CIDR selector semantics (the '10.1' vs
    10.10.0.1 bug)."""

    def flow(self, src, dst="10.0.0.2"):
        return FlowNineTuple(None, "a", "b", 0x0800, src, dst, 6, 1, 80)

    def test_bare_prefix_is_octet_aligned(self):
        selector = FlowSelector(src_ip_prefix="10.1")
        assert selector.matches(self.flow("10.1.0.1"))
        assert selector.matches(self.flow("10.1.255.9"))
        assert not selector.matches(self.flow("10.10.0.1"))
        assert not selector.matches(self.flow("10.100.0.1"))

    def test_trailing_dot_prefix_keeps_historical_shape(self):
        selector = FlowSelector(src_ip_prefix="10.1.")
        assert selector.matches(self.flow("10.1.0.1"))
        assert not selector.matches(self.flow("10.10.0.1"))

    def test_exact_prefix_equals_ip(self):
        selector = FlowSelector(src_ip_prefix="10.1.0.1")
        assert selector.matches(self.flow("10.1.0.1"))
        assert not selector.matches(self.flow("10.1.0.10"))

    def test_cidr_selectors(self):
        selector = FlowSelector(src_cidr="10.1.128.0/17",
                                dst_cidr="10.0.0.0/16")
        assert selector.matches(self.flow("10.1.200.1", "10.0.3.4"))
        assert not selector.matches(self.flow("10.1.0.1", "10.0.3.4"))
        assert not selector.matches(self.flow("10.1.200.1", "10.9.3.4"))

    def test_cidr_validated_at_construction(self):
        import pytest

        with pytest.raises(ValueError):
            FlowSelector(src_cidr="10.1.0.1/16")  # host bits
        with pytest.raises(ValueError):
            FlowSelector(dst_cidr="10.1.0.0")  # no length

    def test_cidr_counts_toward_specificity(self):
        wide = FlowSelector(src_cidr="10.0.0.0/16")
        narrow = FlowSelector(src_cidr="10.0.0.0/16", tp_dst=80)
        assert narrow.specificity() > wide.specificity()

    def test_policy_table_orders_cidr_policies(self):
        table = PolicyTable()
        txn = table.begin()
        txn.add(Policy(name="wide", selector=FlowSelector(
            src_cidr="10.0.0.0/16"), action=PolicyAction.ALLOW))
        txn.add(Policy(name="narrow", selector=FlowSelector(
            src_cidr="10.0.0.0/16", tp_dst=80), action=PolicyAction.DROP))
        txn.commit()
        hit, _ = table.match(self.flow("10.0.0.1"))
        assert hit.name == "narrow"  # specificity breaks the tie
