"""Tests for the command-line interface and ASCII charts."""

import pytest

from repro.analysis.ascii_charts import bar_chart, sparkline, utilization_meter
from repro.cli import build_parser, main


class TestAsciiCharts:
    def test_sparkline_scales_to_max(self):
        assert sparkline([0, 1, 2, 3]) == "▁▃▆█"

    def test_sparkline_fixed_maximum(self):
        low = sparkline([1, 1], maximum=8)
        assert set(low) == {"▁"} or set(low) == {"▂"}

    def test_sparkline_empty_and_zero(self):
        assert sparkline([]) == ""
        assert sparkline([0, 0]) == "▁▁"

    def test_bar_chart_layout(self):
        chart = bar_chart({"aa": 2.0, "b": 1.0}, width=4)
        lines = chart.splitlines()
        assert lines[0].startswith("aa  ████")
        assert lines[1].startswith("b ")
        assert "██" in lines[1]

    def test_bar_chart_empty(self):
        assert bar_chart({}) == ""

    def test_utilization_meter(self):
        assert utilization_meter(0.5, width=4) == "[##--] 50%"
        assert utilization_meter(2.0, width=2) == "[##] 100%"
        assert utilization_meter(-1.0, width=2) == "[--] 0%"


class TestParser:
    def test_all_commands_present(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("campus", "throughput", "latency", "loadbalance",
                        "stats", "scale", "chaos", "replay"):
            assert command in text

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_bad_dispatcher_rejected(self):
        with pytest.raises(SystemExit):
            main(["loadbalance", "--dispatcher", "roulette"])


class TestCommands:
    def test_latency_command_runs(self, capsys):
        assert main(["latency", "--pings", "5"]) == 0
        out = capsys.readouterr().out
        assert "legacy:" in out and "overhead:" in out

    def test_throughput_command_runs(self, capsys):
        assert main(["throughput", "--elements", "1",
                     "--seconds", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "element(s)" in out and "Mbps" in out

    def test_loadbalance_command_runs(self, capsys):
        assert main(["loadbalance", "--dispatcher", "polling",
                     "--seconds", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "deviation:" in out

    def test_stats_quick_prints_hot_path_histograms(self, capsys):
        assert main(["stats", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "controller.packet_in_latency_s{kind=data}" in out
        assert "controller.flow_setup_rules" in out
        assert "p95" in out and "p99" in out

    def test_stats_json_round_trips(self, capsys):
        from repro.obs import from_json

        assert main(["stats", "--quick", "--format", "json"]) == 0
        snapshot = from_json(capsys.readouterr().out)
        assert snapshot.get("controller.flows_installed").value >= 1

    def test_stats_prometheus_format(self, capsys):
        assert main(["stats", "--quick", "--format", "prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE livesec_controller_flows_installed_total counter" in out
        assert 'livesec_controller_packet_in_latency_s{kind="data"' in out

    def test_campus_command_dumps_json(self, tmp_path, capsys):
        path = str(tmp_path / "db.json")
        assert main(["campus", "--dump-json", path]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out and "Figure 8" in out
        from repro.core.webdb import WebDatabase

        loaded = WebDatabase.load(path)
        assert loaded["events"]


class TestReplayCommand:
    @pytest.fixture
    def recording(self, tmp_path):
        from repro.core.events import EventKind, EventLog

        log = EventLog()
        log.emit(1.0, EventKind.SWITCH_JOIN, dpid=1, name="sw1")
        log.emit(2.0, EventKind.HOST_JOIN, mac="m1", ip="10.0.0.1", dpid=1)
        log.emit(6.0, EventKind.HOST_LEAVE, mac="m1")
        path = str(tmp_path / "run.jsonl")
        log.save(path)
        return path, log.digest()

    def test_replay_renders_final_state(self, recording, capsys):
        path, __ = recording
        assert main(["replay", path]) == 0
        out = capsys.readouterr().out
        assert "users left: ['m1']" in out
        assert "3 events" in out

    def test_replay_at_past_moment(self, recording, capsys):
        path, __ = recording
        assert main(["replay", path, "--at", "3.0"]) == 0
        out = capsys.readouterr().out
        assert "users online: 1" in out
        assert "t=3.00s" in out

    def test_replay_digest_only_matches_recording(self, recording, capsys):
        path, digest = recording
        assert main(["replay", path, "--digest-only"]) == 0
        assert digest in capsys.readouterr().out

    def test_replay_json_format(self, recording, capsys):
        import json

        path, __ = recording
        assert main(["replay", path, "--format", "json", "--at", "3.0"]) == 0
        view = json.loads(capsys.readouterr().out)
        assert view["users"][0]["online"] is True

    def test_chaos_record_then_replay_round_trip(self, tmp_path, capsys):
        path = str(tmp_path / "chaos.jsonl")
        assert main(["chaos", "--seed", "0", "--duration", "6.0",
                     "--record", path]) == 0
        live = capsys.readouterr().out
        assert "recorded" in live
        assert main(["replay", path, "--digest-only"]) == 0
        replayed = capsys.readouterr().out
        live_digest = live.split("digest ")[-1].split(")")[0].strip()
        assert live_digest in replayed


class TestAppsCommand:
    def test_apps_json_lists_all_apps(self, capsys):
        import json

        assert main(["apps", "--format", "json", "--no-traffic"]) == 0
        descriptions = json.loads(capsys.readouterr().out)
        names = [d["name"] for d in descriptions]
        assert names == ["host-tracker", "topology", "service-directory",
                         "policy-engine", "steering", "monitor"]
        for description in descriptions:
            assert description["summary"]
            assert isinstance(description["subscriptions"], list)

    def test_apps_text_shows_traffic_counters(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        assert "steering" in out
        assert "DataPacketIn" in out


class TestOpsCommand:
    def test_ops_status_lists_running_apps(self, capsys):
        assert main(["ops", "--seconds", "2"]) == 0
        out = capsys.readouterr().out
        assert "monitor" in out
        assert "running" in out
        assert "journal digest " in out

    def test_ops_cycle_records_and_replays(self, tmp_path, capsys):
        import re

        path = str(tmp_path / "ops.jsonl")
        assert main(["ops", "--action", "cycle", "--seconds", "3",
                     "--record", path]) == 0
        out = capsys.readouterr().out
        assert "ops: stopped 'monitor'" in out
        assert "ops: reloaded 'monitor'" in out
        assert "ops: started 'monitor'" in out
        assert "(replay digest matches)" in out
        digest = re.search(r"journal digest ([0-9a-f]{64})", out).group(1)

        # Same-seed second run: the journal digest is reproducible.
        assert main(["ops", "--action", "cycle", "--seconds", "3"]) == 0
        second = capsys.readouterr().out
        assert re.search(
            r"journal digest ([0-9a-f]{64})", second).group(1) == digest

    def test_ops_reload_same_config_is_skipped(self, capsys):
        assert main(["ops", "--action", "reload", "--app", "steering",
                     "--seconds", "2"]) == 0
        out = capsys.readouterr().out
        assert "skipped (same config)" in out

    def test_ops_json_format(self, capsys):
        import json

        assert main(["ops", "--action", "stop", "--seconds", "2",
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        by_name = {app["name"]: app for app in payload["apps"]}
        assert by_name["monitor"]["state"] == "stopped"
        assert payload["journal"]["sessions"] > 0
        assert len(payload["journal_digest"]) == 64


class TestJournalCommand:
    @pytest.fixture()
    def recording(self, tmp_path, capsys):
        path = str(tmp_path / "ops.jsonl")
        assert main(["ops", "--action", "cycle", "--seconds", "3",
                     "--record", path]) == 0
        capsys.readouterr()
        return path

    def test_journal_summarizes_sessions(self, recording, capsys):
        assert main(["journal", recording]) == 0
        out = capsys.readouterr().out
        assert "session" in out
        assert "journal digest " in out

    def test_journal_digest_only(self, recording, capsys):
        assert main(["journal", recording, "--digest-only"]) == 0
        out = capsys.readouterr().out
        assert "journal digest " in out

    def test_journal_single_session_detail(self, recording, capsys):
        assert main(["journal", recording, "--session", "1"]) == 0
        out = capsys.readouterr().out
        assert "open" in out

    def test_journal_missing_session_fails(self, recording, capsys):
        assert main(["journal", recording, "--session", "999"]) == 1

    def test_journal_json_format(self, recording, capsys):
        import json

        assert main(["journal", recording, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["sessions"] > 0
        assert payload["records"]
        assert len(payload["digest"]) == 64
