"""Unit tests for the service elements: capacity model, daemon, engines."""

import pytest

from repro.core import messages as svcmsg
from repro.elements import (
    ContentInspectionElement,
    FirewallElement,
    IntrusionDetectionElement,
    ProtocolIdentificationElement,
    VirusScanElement,
)
from repro.elements.base import ServiceElement
from repro.elements.firewall import AclRule
from repro.net import packet as pkt
from repro.net.node import Node, connect


class Collector(Node):
    """Receives what the element re-emits and what its daemon sends."""

    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.frames = []
        self.service_messages = []

    def receive(self, frame, in_port):
        payload = frame.app_payload()
        if svcmsg.is_service_message(payload):
            self.service_messages.append(svcmsg.decode(payload))
        else:
            self.frames.append(frame)


def wire(sim, element):
    collector = Collector(sim, "collector")
    connect(sim, collector, element, bandwidth_bps=10e9, delay_s=1e-6)
    return collector


def frame_to(element, payload=b"", size=1500, sport=1000, dport=80,
             src_ip="10.0.0.1", proto="tcp", flags=""):
    if proto == "tcp":
        frame = pkt.make_tcp("00:00:00:00:00:01", element.mac, src_ip,
                             "10.0.0.9", sport, dport, payload=payload,
                             flags=flags, size=size)
    else:
        frame = pkt.make_udp("00:00:00:00:00:01", element.mac, src_ip,
                             "10.0.0.9", sport, dport, payload=payload,
                             size=size)
    return frame


class TestCapacityModel:
    def test_processes_and_reemits(self, sim):
        element = ServiceElement(sim, "e", "00:00:00:00:00:02", "10.0.0.2")
        collector = wire(sim, element)
        element.receive(frame_to(element), 1)
        sim.run(until=1.0)
        assert element.processed_packets == 1
        assert len(collector.frames) == 1
        # Re-emitted unchanged: the switch restores the real dst.
        assert collector.frames[0].dst == element.mac

    def test_throughput_limited_by_capacity(self, sim):
        element = ServiceElement(sim, "e", "00:00:00:00:00:02", "10.0.0.2",
                                 capacity_bps=12e6, per_packet_cost_s=0.0,
                                 max_queue_bytes=10**9)
        wire(sim, element)
        for __ in range(100):
            element.receive(frame_to(element, size=1500), 1)
        sim.run(until=1.0)
        # 12 Mbps / (1500*8 bits) = 1000 pps -> all 100 done in 0.1s,
        # but throughput over the busy period matches capacity.
        assert element.processed_packets == 100
        assert element._busy_time_total == pytest.approx(100 * 1500 * 8 / 12e6)

    def test_per_packet_cost_reduces_rate(self, sim):
        plain = ServiceElement(sim, "p", "00:00:00:00:00:02", "10.0.0.2",
                               capacity_bps=500e6, per_packet_cost_s=0.0)
        costly = ServiceElement(sim, "c", "00:00:00:00:00:03", "10.0.0.3",
                                capacity_bps=500e6, per_packet_cost_s=4.5e-6)
        assert costly._processing_cost(frame_to(costly)) > \
            plain._processing_cost(frame_to(plain))

    def test_bypass_skips_inspection_cost(self, sim):
        element = IntrusionDetectionElement(
            sim, "e", "00:00:00:00:00:02", "10.0.0.2", bypass=True)
        wire(sim, element)
        element.receive(
            frame_to(element, payload=b"' OR '1'='1", dport=80), 1)
        sim.run(until=1.0)
        assert element.alerts == 0  # bypass mode does not inspect
        assert element.processed_packets == 1

    def test_queue_overflow_drops(self, sim):
        element = ServiceElement(sim, "e", "00:00:00:00:00:02", "10.0.0.2",
                                 capacity_bps=1e6, max_queue_bytes=3000)
        wire(sim, element)
        for __ in range(5):
            element.receive(frame_to(element, size=1500), 1)
        sim.run(until=5.0)
        assert element.dropped_packets == 3
        assert element.processed_packets == 2

    def test_ignores_frames_for_other_macs(self, sim):
        element = ServiceElement(sim, "e", "00:00:00:00:00:02", "10.0.0.2")
        wire(sim, element)
        stray = frame_to(element)
        stray.dst = "00:00:00:00:00:99"
        element.receive(stray, 1)
        sim.run(until=1.0)
        assert element.processed_packets == 0

    def test_invalid_capacity_rejected(self, sim):
        with pytest.raises(ValueError):
            ServiceElement(sim, "e", "m", "ip", capacity_bps=0)


class TestDaemon:
    def test_online_messages_carry_load(self, sim):
        element = ServiceElement(sim, "e", "00:00:00:00:00:02", "10.0.0.2",
                                 report_interval_s=0.5)
        element.provision("cert")
        collector = wire(sim, element)
        for __ in range(10):
            element.receive(frame_to(element), 1)
        sim.run(until=1.2)
        assert len(collector.service_messages) >= 2
        message = collector.service_messages[-1]
        assert isinstance(message, svcmsg.OnlineMessage)
        assert message.certificate == "cert"
        assert message.service_type == "generic"

    def test_shutdown_stops_daemon(self, sim):
        element = ServiceElement(sim, "e", "00:00:00:00:00:02", "10.0.0.2",
                                 report_interval_s=0.5)
        collector = wire(sim, element)
        element.shutdown()
        sim.run(until=2.0)
        assert collector.service_messages == []

    def test_cpu_reflects_busy_fraction(self, sim):
        element = ServiceElement(sim, "e", "00:00:00:00:00:02", "10.0.0.2",
                                 capacity_bps=12e6, per_packet_cost_s=0.0,
                                 report_interval_s=1.0)
        wire(sim, element)
        element.shutdown()  # keep the daemon from resetting the window
        # 50 frames x 1ms = 50 ms busy in a 1 s window -> ~5% CPU.
        for __ in range(50):
            element.receive(frame_to(element, size=1500), 1)
        sim.run(until=0.99)
        cpu, __, pps = element.current_load()
        assert cpu == pytest.approx(0.05, abs=0.01)
        assert pps == pytest.approx(50, abs=5)


class TestIds:
    def test_content_rule_fires_once_per_flow(self, sim):
        element = IntrusionDetectionElement(sim, "e", "00:00:00:00:00:02",
                                            "10.0.0.2")
        collector = wire(sim, element)
        for __ in range(3):
            element.receive(
                frame_to(element, payload=b"x ' OR '1'='1 y", dport=80), 1)
        sim.run(until=1.0)
        attacks = [m for m in collector.service_messages
                   if isinstance(m, svcmsg.EventReportMessage)]
        assert len(attacks) == 1
        assert "SQL injection" in attacks[0].detail["attack"]
        assert attacks[0].detail["verdict"] == "malicious"

    def test_rule_port_constraint(self, sim):
        element = IntrusionDetectionElement(sim, "e", "00:00:00:00:00:02",
                                            "10.0.0.2")
        wire(sim, element)
        element.receive(
            frame_to(element, payload=b"' OR '1'='1", dport=8080), 1)
        sim.run(until=1.0)
        assert element.alerts == 0  # SQLi rule is port-80 scoped

    def test_portscan_detection(self, sim):
        element = IntrusionDetectionElement(sim, "e", "00:00:00:00:00:02",
                                            "10.0.0.2")
        collector = wire(sim, element)
        for port in range(1000, 1020):
            element.receive(frame_to(element, dport=port, flags="S",
                                     size=64), 1)
        sim.run(until=1.0)
        scans = [m for m in collector.service_messages
                 if isinstance(m, svcmsg.EventReportMessage)
                 and "portscan" in m.detail.get("attack", "")]
        assert len(scans) == 1

    def test_no_portscan_for_repeat_ports(self, sim):
        element = IntrusionDetectionElement(sim, "e", "00:00:00:00:00:02",
                                            "10.0.0.2")
        wire(sim, element)
        for __ in range(30):
            element.receive(frame_to(element, dport=80), 1)
        sim.run(until=1.0)
        assert element.alerts == 0

    def test_clean_traffic_silent(self, sim):
        element = IntrusionDetectionElement(sim, "e", "00:00:00:00:00:02",
                                            "10.0.0.2")
        collector = wire(sim, element)
        element.receive(
            frame_to(element, payload=b"GET /index.html HTTP/1.1"), 1)
        sim.run(until=1.0)
        events = [m for m in collector.service_messages
                  if isinstance(m, svcmsg.EventReportMessage)]
        assert events == []


class TestL7:
    @pytest.mark.parametrize("payload,expected", [
        (b"GET / HTTP/1.1\r\n", "http"),
        (b"SSH-2.0-OpenSSH_5.8", "ssh"),
        (b"\x13BitTorrent protocol", "bittorrent"),
        (b"EHLO mail.example.com", "smtp"),
        (b"\x16\x03\x01\x02\x00", "ssl"),
    ])
    def test_classification(self, sim, payload, expected):
        element = ProtocolIdentificationElement(sim, "e",
                                                "00:00:00:00:00:02",
                                                "10.0.0.2")
        collector = wire(sim, element)
        element.receive(frame_to(element, payload=payload), 1)
        sim.run(until=1.0)
        reports = [m for m in collector.service_messages
                   if isinstance(m, svcmsg.EventReportMessage)]
        assert len(reports) == 1
        assert reports[0].kind == "protocol"
        assert reports[0].detail["application"] == expected

    def test_classified_once_per_flow(self, sim):
        element = ProtocolIdentificationElement(sim, "e",
                                                "00:00:00:00:00:02",
                                                "10.0.0.2")
        collector = wire(sim, element)
        for __ in range(5):
            element.receive(frame_to(element, payload=b"GET / HTTP/1.1"), 1)
        sim.run(until=1.0)
        reports = [m for m in collector.service_messages
                   if isinstance(m, svcmsg.EventReportMessage)]
        assert len(reports) == 1

    def test_gives_up_after_bounded_packets(self, sim):
        element = ProtocolIdentificationElement(sim, "e",
                                                "00:00:00:00:00:02",
                                                "10.0.0.2")
        collector = wire(sim, element)
        for __ in range(15):
            element.receive(frame_to(element, payload=b"\x00\x01garbage"), 1)
        sim.run(until=1.0)
        reports = [m for m in collector.service_messages
                   if isinstance(m, svcmsg.EventReportMessage)]
        assert len(reports) == 1
        assert reports[0].detail["application"] == "unknown"


class TestFirewall:
    def test_deny_rule_reports_attack(self, sim):
        element = FirewallElement(
            sim, "e", "00:00:00:00:00:02", "10.0.0.2",
            acl=[AclRule(action="deny", tp_dst=23)],
        )
        collector = wire(sim, element)
        element.receive(frame_to(element, dport=23), 1)
        element.receive(frame_to(element, dport=80), 1)
        sim.run(until=1.0)
        reports = [m for m in collector.service_messages
                   if isinstance(m, svcmsg.EventReportMessage)]
        assert len(reports) == 1
        assert element.denies == 1

    def test_first_match_wins(self, sim):
        element = FirewallElement(
            sim, "e", "m", "ip",
            acl=[AclRule(action="allow", src_ip_prefix="10.0."),
                 AclRule(action="deny")],
        )
        from repro.net.packet import FlowNineTuple

        inside = FlowNineTuple(None, "a", "b", 0x0800, "10.0.0.1",
                               "10.0.0.2", 6, 1, 2)
        outside = inside._replace(nw_src="192.168.0.1")
        assert element.evaluate(inside) == "allow"
        assert element.evaluate(outside) == "deny"

    def test_default_action_validated(self, sim):
        with pytest.raises(ValueError):
            FirewallElement(sim, "e", "m", "ip", default_action="maybe")


class TestVirusScanner:
    def test_signature_in_single_packet(self, sim):
        element = VirusScanElement(sim, "e", "00:00:00:00:00:02", "10.0.0.2")
        collector = wire(sim, element)
        element.receive(
            frame_to(element,
                     payload=b"X5O!P%@AP[4\\PZX54(P^)7CC)7}$EICAR"), 1)
        sim.run(until=1.0)
        assert element.detections == 1
        reports = [m for m in collector.service_messages
                   if isinstance(m, svcmsg.EventReportMessage)]
        assert reports[0].detail["verdict"] == "malicious"

    def test_signature_straddling_packets(self, sim):
        element = VirusScanElement(sim, "e", "00:00:00:00:00:02", "10.0.0.2")
        wire(sim, element)
        signature = b"X5O!P%@AP[4\\PZX54(P^)7CC)7}$EICAR"
        element.receive(frame_to(element, payload=signature[:15]), 1)
        element.receive(frame_to(element, payload=signature[15:]), 1)
        sim.run(until=1.0)
        assert element.detections == 1

    def test_clean_payload_silent(self, sim):
        element = VirusScanElement(sim, "e", "00:00:00:00:00:02", "10.0.0.2")
        wire(sim, element)
        element.receive(frame_to(element, payload=b"innocent bytes"), 1)
        sim.run(until=1.0)
        assert element.detections == 0


class TestContentInspection:
    def test_keyword_reported_as_suspicious(self, sim):
        element = ContentInspectionElement(sim, "e", "00:00:00:00:00:02",
                                           "10.0.0.2")
        collector = wire(sim, element)
        element.receive(
            frame_to(element, payload=b"leak CONFIDENTIAL-INTERNAL-ONLY"), 1)
        sim.run(until=1.0)
        reports = [m for m in collector.service_messages
                   if isinstance(m, svcmsg.EventReportMessage)]
        assert reports[0].detail["verdict"] == "suspicious"

    def test_block_on_match_mode(self, sim):
        element = ContentInspectionElement(sim, "e", "00:00:00:00:00:02",
                                           "10.0.0.2", block_on_match=True)
        collector = wire(sim, element)
        element.receive(frame_to(element, payload=b"SSN: 123-45-6789"), 1)
        sim.run(until=1.0)
        reports = [m for m in collector.service_messages
                   if isinstance(m, svcmsg.EventReportMessage)]
        assert reports[0].detail["verdict"] == "malicious"


class TestIdsRuleLanguage:
    """Snort-style content modifiers (offset/depth/nocase, multi-content)."""

    def _fire(self, sim, rule, payload, dport=80):
        element = IntrusionDetectionElement(
            sim, "e", "00:00:00:00:00:02", "10.0.0.2", rules=[rule])
        wire(sim, element)
        element.receive(frame_to(element, payload=payload, dport=dport), 1)
        sim.run(until=0.5)
        return element.alerts

    def test_nocase_matching(self, sim):
        from repro.elements.signatures import IdsRule

        rule = IdsRule(name="nocase", content=b"select * from",
                       nocase=True)
        assert self._fire(sim, rule, b"SELECT * FROM users") == 1

    def test_case_sensitive_by_default(self, sim):
        from repro.elements.signatures import IdsRule

        rule = IdsRule(name="cs", content=b"select * from")
        assert self._fire(sim, rule, b"SELECT * FROM users") == 0

    def test_offset_skips_prefix(self, sim):
        from repro.elements.signatures import ContentMatch, IdsRule

        rule = IdsRule(name="off", contents=(
            ContentMatch(b"EVIL", offset=4),))
        assert self._fire(sim, rule, b"xxxxEVIL") == 1
        assert self._fire(sim, rule, b"EVILxxxx") == 0

    def test_depth_bounds_search(self, sim):
        from repro.elements.signatures import ContentMatch, IdsRule

        rule = IdsRule(name="depth", contents=(
            ContentMatch(b"EVIL", depth=6),))
        assert self._fire(sim, rule, b"xxEVILzz") == 1
        assert self._fire(sim, rule, b"xxxxxxEVIL") == 0

    def test_multi_content_all_must_match(self, sim):
        from repro.elements.signatures import ContentMatch, IdsRule

        rule = IdsRule(name="multi", contents=(
            ContentMatch(b"user="),
            ContentMatch(b"passwd="),
        ))
        assert self._fire(sim, rule, b"user=a&passwd=b") == 1
        assert self._fire(sim, rule, b"user=a&token=b") == 0

    def test_source_port_constraint(self, sim):
        from repro.elements.signatures import IdsRule
        from repro.net.packet import IP_PROTO_TCP

        rule = IdsRule(name="src", content=b"BEACON",
                       nw_proto=IP_PROTO_TCP, tp_src=6667)
        element = IntrusionDetectionElement(
            sim, "e", "00:00:00:00:00:02", "10.0.0.2", rules=[rule])
        wire(sim, element)
        element.receive(
            frame_to(element, payload=b"BEACON", sport=6667), 1)
        element.receive(
            frame_to(element, payload=b"BEACON", sport=80), 1)
        sim.run(until=0.5)
        assert element.alerts == 1
