"""Tests for policy-table persistence."""

import json

import pytest

from repro.core.policy import (
    FlowSelector,
    Granularity,
    Policy,
    PolicyAction,
    PolicyTable,
)
from repro.core.policy_io import (
    PolicyFormatError,
    load_policies,
    save_policies,
    table_from_dict,
    table_to_dict,
)


@pytest.fixture
def table():
    table = PolicyTable(default_action=PolicyAction.DROP)
    table.add(Policy(
        name="inspect-internet",
        selector=FlowSelector(dst_ip="10.255.255.254"),
        action=PolicyAction.CHAIN,
        service_chain=("l7", "ids"),
        granularity=Granularity.USER,
        inspect_reply=False,
        priority=200,
    ))
    table.add(Policy(
        name="east-west-allow",
        selector=FlowSelector(src_ip_prefix="10.0.", dst_ip_prefix="10.0.",
                              nw_proto=6),
        action=PolicyAction.ALLOW,
        priority=50,
    ))
    return table


class TestRoundtrip:
    def test_dict_roundtrip_preserves_everything(self, table):
        restored = table_from_dict(table_to_dict(table))
        assert restored.default_action is PolicyAction.DROP
        assert len(restored) == len(table)
        original = {p.name: p for p in table}
        for policy in restored:
            src = original[policy.name]
            assert policy.selector == src.selector
            assert policy.action == src.action
            assert policy.service_chain == src.service_chain
            assert policy.granularity == src.granularity
            assert policy.inspect_reply == src.inspect_reply
            assert policy.priority == src.priority

    def test_file_roundtrip(self, table, tmp_path):
        path = str(tmp_path / "policies.json")
        save_policies(table, path)
        restored = load_policies(path)
        assert [p.name for p in restored] == [p.name for p in table]
        # The file itself is reviewable JSON (v2 intent schema).
        with open(path) as handle:
            document = json.load(handle)
        assert document["schema_version"] == 2
        assert document["intents"][0]["selector"] == {
            "dst_ip": "10.255.255.254"
        }

    def test_lookup_equivalence(self, table):
        from repro.net.packet import FlowNineTuple

        restored = table_from_dict(table_to_dict(table))
        flow = FlowNineTuple(None, "a", "b", 0x0800, "10.0.0.1",
                             "10.255.255.254", 6, 1, 80)
        assert table.lookup(flow).name == restored.lookup(flow).name


class TestSchemaVersions:
    def test_v1_documents_still_load(self):
        table = table_from_dict({
            "default_action": "drop",
            "policies": [
                {"name": "x", "action": "allow",
                 "selector": {"dst_ip": "10.0.0.1"}},
            ],
        })
        assert table.default_action is PolicyAction.DROP
        assert table.get("x").selector.dst_ip == "10.0.0.1"

    def test_v2_intents_load_with_zones(self):
        table = table_from_dict({
            "schema_version": 2,
            "intents": [
                {"name": "quarantine", "action": "drop",
                 "src_zone": "10.66.0.0/16", "priority": 150},
            ],
        })
        policy = table.get("quarantine")
        assert policy.selector.src_cidr == "10.66.0.0/16"
        assert policy.priority == 150

    def test_v1_to_v2_round_trip(self, table):
        # A v1-era table emits v2 and loads back identically.
        document = table_to_dict(table)
        assert document["schema_version"] == 2
        restored = table_from_dict(document)
        assert [p.name for p in restored] == [p.name for p in table]
        # And the emitted v2 round-trips through itself.
        again = table_from_dict(table_to_dict(restored))
        assert [(p.name, p.selector) for p in again] == \
            [(p.name, p.selector) for p in restored]

    def test_unknown_schema_version_rejected(self):
        with pytest.raises(PolicyFormatError, match="schema_version"):
            table_from_dict({"schema_version": 3, "intents": []})

    def test_unknown_document_field_rejected_v1(self):
        with pytest.raises(PolicyFormatError, match="unknown document"):
            table_from_dict({"policies": [], "polices": []})

    def test_unknown_document_field_rejected_v2(self):
        with pytest.raises(PolicyFormatError, match="unknown document"):
            table_from_dict({"schema_version": 2, "intents": [],
                             "extras": 1})

    def test_unknown_entry_field_rejected_v1(self):
        with pytest.raises(PolicyFormatError, match="unknown fields"):
            table_from_dict({"policies": [
                {"name": "x", "action": "allow", "priority_": 5},
            ]})

    def test_unknown_intent_field_rejected_v2(self):
        with pytest.raises(PolicyFormatError, match="unknown intent"):
            table_from_dict({"schema_version": 2, "intents": [
                {"name": "x", "action": "allow", "zone": "10.0.0.0/8"},
            ]})

    def test_verify_rejects_conflicting_document(self):
        document = {
            "schema_version": 2,
            "intents": [
                {"name": "allow-all", "action": "allow"},
                {"name": "drop-all", "action": "drop"},
            ],
        }
        # Unverified load keeps legacy permissiveness...
        table = table_from_dict(document)
        assert len(table) == 2
        # ...verified load refuses, naming both policies.
        with pytest.raises(PolicyFormatError) as exc:
            table_from_dict(document, verify=True)
        assert "allow-all" in str(exc.value)
        assert "drop-all" in str(exc.value)

    def test_loaded_table_starts_at_version_zero(self):
        table = table_from_dict({
            "schema_version": 2,
            "intents": [{"name": "x", "action": "allow"}],
        })
        assert table.version == 0
        assert table.deprecated_calls == {"add": 0, "remove": 0}


class TestValidation:
    def test_not_an_object(self):
        with pytest.raises(PolicyFormatError):
            table_from_dict([])

    def test_chain_default_rejected(self):
        with pytest.raises(PolicyFormatError):
            table_from_dict({"default_action": "chain", "policies": []})

    def test_unknown_action_rejected(self):
        with pytest.raises(PolicyFormatError):
            table_from_dict({"policies": [
                {"name": "x", "action": "quarantine"}
            ]})

    def test_unknown_selector_field_rejected(self):
        with pytest.raises(PolicyFormatError):
            table_from_dict({"policies": [
                {"name": "x", "action": "allow",
                 "selector": {"dst_planet": "mars"}}
            ]})

    def test_chain_without_elements_rejected(self):
        with pytest.raises(PolicyFormatError):
            table_from_dict({"policies": [
                {"name": "x", "action": "chain"}
            ]})

    def test_nameless_policy_rejected(self):
        with pytest.raises(PolicyFormatError):
            table_from_dict({"policies": [{"action": "allow"}]})

    def test_bad_json_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(PolicyFormatError):
            load_policies(str(path))

    def test_empty_document_gives_default_table(self):
        table = table_from_dict({})
        assert len(table) == 0
        assert table.default_action is PolicyAction.ALLOW


class TestLiveUse:
    def test_loaded_policies_drive_the_controller(self, tmp_path):
        from repro import build_livesec_network
        from repro.workloads import CbrUdpFlow

        path = str(tmp_path / "policies.json")
        with open(path, "w") as handle:
            json.dump({
                "policies": [{
                    "name": "no-internet",
                    "action": "drop",
                    "selector": {"dst_ip": "10.255.255.254"},
                }],
            }, handle)
        net = build_livesec_network(
            topology="linear", policies=load_policies(path),
            num_as=2, hosts_per_as=1,
        )
        net.start()
        flow = CbrUdpFlow(net.sim, net.host("h1_1"), "10.255.255.254",
                          rate_bps=2e6, duration_s=1.0)
        flow.start()
        net.run(2.0)
        assert flow.delivered_bytes(net.gateway) == 0
