"""Tests for policy-table persistence."""

import json

import pytest

from repro.core.policy import (
    FlowSelector,
    Granularity,
    Policy,
    PolicyAction,
    PolicyTable,
)
from repro.core.policy_io import (
    PolicyFormatError,
    load_policies,
    save_policies,
    table_from_dict,
    table_to_dict,
)


@pytest.fixture
def table():
    table = PolicyTable(default_action=PolicyAction.DROP)
    table.add(Policy(
        name="inspect-internet",
        selector=FlowSelector(dst_ip="10.255.255.254"),
        action=PolicyAction.CHAIN,
        service_chain=("l7", "ids"),
        granularity=Granularity.USER,
        inspect_reply=False,
        priority=200,
    ))
    table.add(Policy(
        name="east-west-allow",
        selector=FlowSelector(src_ip_prefix="10.0.", dst_ip_prefix="10.0.",
                              nw_proto=6),
        action=PolicyAction.ALLOW,
        priority=50,
    ))
    return table


class TestRoundtrip:
    def test_dict_roundtrip_preserves_everything(self, table):
        restored = table_from_dict(table_to_dict(table))
        assert restored.default_action is PolicyAction.DROP
        assert len(restored) == len(table)
        original = {p.name: p for p in table}
        for policy in restored:
            src = original[policy.name]
            assert policy.selector == src.selector
            assert policy.action == src.action
            assert policy.service_chain == src.service_chain
            assert policy.granularity == src.granularity
            assert policy.inspect_reply == src.inspect_reply
            assert policy.priority == src.priority

    def test_file_roundtrip(self, table, tmp_path):
        path = str(tmp_path / "policies.json")
        save_policies(table, path)
        restored = load_policies(path)
        assert [p.name for p in restored] == [p.name for p in table]
        # The file itself is reviewable JSON.
        with open(path) as handle:
            document = json.load(handle)
        assert document["policies"][0]["selector"] == {
            "dst_ip": "10.255.255.254"
        }

    def test_lookup_equivalence(self, table):
        from repro.net.packet import FlowNineTuple

        restored = table_from_dict(table_to_dict(table))
        flow = FlowNineTuple(None, "a", "b", 0x0800, "10.0.0.1",
                             "10.255.255.254", 6, 1, 80)
        assert table.lookup(flow).name == restored.lookup(flow).name


class TestValidation:
    def test_not_an_object(self):
        with pytest.raises(PolicyFormatError):
            table_from_dict([])

    def test_chain_default_rejected(self):
        with pytest.raises(PolicyFormatError):
            table_from_dict({"default_action": "chain", "policies": []})

    def test_unknown_action_rejected(self):
        with pytest.raises(PolicyFormatError):
            table_from_dict({"policies": [
                {"name": "x", "action": "quarantine"}
            ]})

    def test_unknown_selector_field_rejected(self):
        with pytest.raises(PolicyFormatError):
            table_from_dict({"policies": [
                {"name": "x", "action": "allow",
                 "selector": {"dst_planet": "mars"}}
            ]})

    def test_chain_without_elements_rejected(self):
        with pytest.raises(PolicyFormatError):
            table_from_dict({"policies": [
                {"name": "x", "action": "chain"}
            ]})

    def test_nameless_policy_rejected(self):
        with pytest.raises(PolicyFormatError):
            table_from_dict({"policies": [{"action": "allow"}]})

    def test_bad_json_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(PolicyFormatError):
            load_policies(str(path))

    def test_empty_document_gives_default_table(self):
        table = table_from_dict({})
        assert len(table) == 0
        assert table.default_action is PolicyAction.ALLOW


class TestLiveUse:
    def test_loaded_policies_drive_the_controller(self, tmp_path):
        from repro import build_livesec_network
        from repro.workloads import CbrUdpFlow

        path = str(tmp_path / "policies.json")
        with open(path, "w") as handle:
            json.dump({
                "policies": [{
                    "name": "no-internet",
                    "action": "drop",
                    "selector": {"dst_ip": "10.255.255.254"},
                }],
            }, handle)
        net = build_livesec_network(
            topology="linear", policies=load_policies(path),
            num_as=2, hosts_per_as=1,
        )
        net.start()
        flow = CbrUdpFlow(net.sim, net.host("h1_1"), "10.255.255.254",
                          rate_bps=2e6, duration_s=1.0)
        flow.start()
        net.run(2.0)
        assert flow.delivered_bytes(net.gateway) == 0
