"""Tests for TCP workloads and the rate-anomaly element."""

import pytest

from repro import Policy, PolicyTable, build_livesec_network
from repro.core.events import EventKind
from repro.core.policy import FlowSelector, PolicyAction
from repro.elements.ratelimit import RateAnomalyElement
from repro.net import packet as pkt
from repro.workloads import CbrUdpFlow
from repro.workloads.tcpflows import TcpServer, TcpTransfer

GATEWAY_IP = "10.255.255.254"


class TestRateAnomalyElement:
    def _element(self, sim, threshold_pps=100.0):
        from repro.net.node import Node, connect

        class Sink(Node):
            def receive(self, frame, in_port):
                pass

        element = RateAnomalyElement(sim, "d", "00:00:00:00:00:02",
                                     "10.0.0.2", threshold_pps=threshold_pps,
                                     burst_s=0.1)
        connect(sim, Sink(sim, "sink"), element, bandwidth_bps=10e9,
                delay_s=1e-6)
        return element

    def _blast(self, sim, element, src_ip, pps, seconds):
        interval = 1.0 / pps
        count = int(seconds * pps)

        def emit(i=0):
            frame = pkt.make_udp("00:00:00:00:00:01", element.mac,
                                 src_ip, "10.0.0.9", 1, 9000, size=200)
            element.receive(frame, 1)
            if i + 1 < count:
                sim.schedule(interval, emit, i + 1)

        emit()

    def test_flood_detected(self, sim):
        element = self._element(sim, threshold_pps=100.0)
        self._blast(sim, element, "10.0.0.1", pps=1000, seconds=0.2)
        sim.run(until=1.0)
        assert element.floods_detected == 1

    def test_normal_rate_not_flagged(self, sim):
        element = self._element(sim, threshold_pps=100.0)
        self._blast(sim, element, "10.0.0.1", pps=50, seconds=1.0)
        sim.run(until=2.0)
        assert element.floods_detected == 0

    def test_per_source_isolation(self, sim):
        element = self._element(sim, threshold_pps=100.0)
        self._blast(sim, element, "10.0.0.1", pps=1000, seconds=0.2)
        self._blast(sim, element, "10.0.0.5", pps=50, seconds=1.0)
        sim.run(until=2.0)
        assert element.floods_detected == 1

    def test_flagged_once_until_unflagged(self, sim):
        element = self._element(sim, threshold_pps=100.0)
        self._blast(sim, element, "10.0.0.1", pps=1000, seconds=0.4)
        sim.run(until=1.0)
        assert element.floods_detected == 1
        element.unflag("10.0.0.1")
        self._blast(sim, element, "10.0.0.1", pps=1000, seconds=0.2)
        sim.run(until=2.0)
        assert element.floods_detected == 2

    def test_invalid_threshold(self, sim):
        with pytest.raises(ValueError):
            RateAnomalyElement(sim, "d", "m", "ip", threshold_pps=0)


class TestDdosEndToEnd:
    def test_flooder_blocked_at_ingress(self):
        policies = PolicyTable()
        policies.add(Policy(
            name="ddos-watch",
            selector=FlowSelector(dst_ip=GATEWAY_IP),
            action=PolicyAction.CHAIN,
            service_chain=("ddos",),
        ))
        net = build_livesec_network(
            topology="linear", policies=policies, num_as=3, hosts_per_as=1,
            access_bandwidth_bps=1e9,
        )
        net.add_element("ddos", net.topology.as_switches[0],
                        threshold_pps=1000.0)
        net.start()
        flood = CbrUdpFlow(net.sim, net.host("h1_1"), GATEWAY_IP,
                           rate_bps=60e6, packet_size=500)  # 15k pps
        flood.start()
        net.run(3.0)
        at_block = flood.delivered_bytes(net.gateway)
        net.run(2.0)
        flood.stop()
        blocked = net.controller.log.query(kind=EventKind.FLOW_BLOCKED)
        assert blocked, "the flood must be blocked"
        assert flood.delivered_bytes(net.gateway) == at_block


class TestTcpWorkloads:
    def test_transfer_completes_with_goodput(self, small_net):
        server = TcpServer(small_net.gateway, port=8080)
        transfer = TcpTransfer(small_net.host("h1_1"), GATEWAY_IP,
                               port=8080, size_bytes=200_000).start()
        small_net.run(20.0)
        assert transfer.complete
        assert server.bytes_received == 200_000
        assert transfer.goodput_bps() > 1e6

    def test_transfer_through_ids_chain(self, steering_net):
        server = TcpServer(steering_net.gateway, port=8080)
        transfer = TcpTransfer(steering_net.host("h1_1"), GATEWAY_IP,
                               port=8080, size_bytes=100_000).start()
        steering_net.run(20.0)
        assert transfer.complete
        assert sum(e.processed_packets for e in steering_net.elements) > 0

    def test_blocked_connection_stalls(self):
        """A TCP connection whose flow the controller drops at the
        ingress must stall: retransmissions go nowhere."""
        policies = PolicyTable()
        policies.add(Policy(
            name="block-8080",
            selector=FlowSelector(dst_ip=GATEWAY_IP, tp_dst=8080),
            action=PolicyAction.DROP,
        ))
        net = build_livesec_network(topology="linear", policies=policies,
                                    num_as=2, hosts_per_as=1)
        net.start()
        server = TcpServer(net.gateway, port=8080)
        transfer = TcpTransfer(net.host("h1_1"), GATEWAY_IP, port=8080,
                               size_bytes=50_000).start()
        net.run(15.0)
        assert not transfer.complete
        assert server.bytes_received == 0
        assert transfer.connection.retransmissions >= 2
