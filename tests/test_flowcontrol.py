"""Tests for aggregate flow control (the Section IV.C extension)."""

import pytest

from repro.core.flowcontrol import USER_THROTTLED, AggregateFlowControl
from repro.workloads import CbrUdpFlow

GATEWAY_IP = "10.255.255.254"


class TestConfiguration:
    def test_quota_set_and_clear(self, small_net):
        control = AggregateFlowControl(small_net.controller)
        control.set_quota("m1", 1e6)
        assert control.quota_for("m1") == 1e6
        control.set_quota("m1", None)
        assert control.quota_for("m1") is None

    def test_default_quota_applies_to_unknown_users(self, small_net):
        control = AggregateFlowControl(small_net.controller,
                                       default_quota_bps=2e6)
        assert control.quota_for("anyone") == 2e6

    def test_invalid_parameters(self, small_net):
        with pytest.raises(ValueError):
            AggregateFlowControl(small_net.controller, check_interval_s=0)
        control = AggregateFlowControl(small_net.controller)
        with pytest.raises(ValueError):
            control.set_quota("m1", -5)


class TestEnforcement:
    def test_over_quota_user_throttled(self, small_net):
        host = small_net.host("h1_1")
        control = AggregateFlowControl(small_net.controller,
                                       check_interval_s=0.5,
                                       penalty_s=2.0)
        control.set_quota(host.mac, 2e6)
        flow = CbrUdpFlow(small_net.sim, host, GATEWAY_IP, rate_bps=20e6)
        flow.start()
        small_net.run(3.0)
        flow.stop()
        assert control.throttle_events >= 1
        events = small_net.controller.log.query(kind=USER_THROTTLED)
        assert events and events[0].data["user_mac"] == host.mac
        assert events[0].data["rate_bps"] > 2e6

    def test_penalty_actually_stops_traffic(self, small_net):
        host = small_net.host("h1_1")
        control = AggregateFlowControl(small_net.controller,
                                       check_interval_s=0.5,
                                       penalty_s=60.0)
        control.set_quota(host.mac, 1e6)
        flow = CbrUdpFlow(small_net.sim, host, GATEWAY_IP, rate_bps=20e6)
        flow.start()
        small_net.run(3.0)
        delivered_at_penalty = flow.delivered_bytes(small_net.gateway)
        small_net.run(2.0)
        flow.stop()
        leaked = flow.delivered_bytes(small_net.gateway) - delivered_at_penalty
        # A little in-flight slack, then silence.
        assert leaked < 20e6 * 0.2 / 8
        assert host.mac in control.penalized_users()

    def test_penalty_expires_and_traffic_resumes(self, small_net):
        host = small_net.host("h1_1")
        control = AggregateFlowControl(small_net.controller,
                                       check_interval_s=0.5,
                                       penalty_s=1.5)
        control.set_quota(host.mac, 1e6)
        flow = CbrUdpFlow(small_net.sim, host, GATEWAY_IP, rate_bps=20e6)
        flow.start()
        small_net.run(10.0)
        flow.stop()
        # Duty cycle: throttled, released, re-throttled, ...
        assert control.throttle_events >= 2

    def test_under_quota_user_untouched(self, small_net):
        host = small_net.host("h1_1")
        control = AggregateFlowControl(small_net.controller,
                                       check_interval_s=0.5)
        control.set_quota(host.mac, 50e6)
        flow = CbrUdpFlow(small_net.sim, host, GATEWAY_IP, rate_bps=5e6,
                          duration_s=3.0)
        flow.start()
        small_net.run(4.0)
        assert control.throttle_events == 0
        assert flow.delivered_bytes(small_net.gateway) > 0

    def test_no_quota_means_no_enforcement(self, small_net):
        host = small_net.host("h1_1")
        control = AggregateFlowControl(small_net.controller,
                                       check_interval_s=0.5)
        flow = CbrUdpFlow(small_net.sim, host, GATEWAY_IP, rate_bps=50e6,
                          duration_s=3.0)
        flow.start()
        small_net.run(4.0)
        assert control.throttle_events == 0
