"""Unit tests for the global policy table."""

import pytest

from repro.core.policy import FlowSelector, Policy, PolicyAction, PolicyTable
from repro.net.packet import FlowNineTuple


def flow(**overrides):
    base = dict(
        vlan=None, dl_src="m1", dl_dst="m2", dl_type=0x0800,
        nw_src="10.0.0.1", nw_dst="10.255.255.254", nw_proto=6,
        tp_src=1000, tp_dst=80,
    )
    base.update(overrides)
    return FlowNineTuple(**base)


class TestSelector:
    def test_empty_selector_matches_all(self):
        assert FlowSelector().matches(flow())

    def test_exact_fields(self):
        selector = FlowSelector(dst_ip="10.255.255.254", nw_proto=6, tp_dst=80)
        assert selector.matches(flow())
        assert not selector.matches(flow(tp_dst=443))
        assert not selector.matches(flow(nw_proto=17))

    def test_prefix_matching(self):
        selector = FlowSelector(src_ip_prefix="10.0.")
        assert selector.matches(flow())
        assert not selector.matches(flow(nw_src="192.168.1.1"))
        assert not selector.matches(flow(nw_src=None))

    def test_mac_selectors(self):
        assert FlowSelector(src_mac="m1").matches(flow())
        assert not FlowSelector(src_mac="m9").matches(flow())
        assert FlowSelector(dst_mac="m2").matches(flow())

    def test_specificity_counts_pinned_fields(self):
        assert FlowSelector().specificity() == 0
        assert FlowSelector(src_ip="a", tp_dst=1).specificity() == 2


class TestPolicyValidation:
    def test_chain_requires_service_chain(self):
        with pytest.raises(ValueError):
            Policy(name="bad", selector=FlowSelector(),
                   action=PolicyAction.CHAIN)

    def test_non_chain_rejects_service_chain(self):
        with pytest.raises(ValueError):
            Policy(name="bad", selector=FlowSelector(),
                   action=PolicyAction.ALLOW, service_chain=("ids",))

    def test_valid_chain(self):
        policy = Policy(name="ok", selector=FlowSelector(),
                        action=PolicyAction.CHAIN, service_chain=("ids", "l7"))
        assert policy.service_chain == ("ids", "l7")


class TestTable:
    def test_first_match_by_priority(self):
        table = PolicyTable()
        table.add(Policy(name="low", selector=FlowSelector(),
                         action=PolicyAction.ALLOW, priority=10))
        table.add(Policy(name="high", selector=FlowSelector(tp_dst=80),
                         action=PolicyAction.DROP, priority=200))
        assert table.lookup(flow()).name == "high"
        assert table.lookup(flow(tp_dst=22)).name == "low"

    def test_specificity_breaks_priority_ties(self):
        table = PolicyTable()
        table.add(Policy(name="wide", selector=FlowSelector(),
                         action=PolicyAction.ALLOW, priority=100))
        table.add(Policy(name="narrow", selector=FlowSelector(tp_dst=80),
                         action=PolicyAction.DROP, priority=100))
        assert table.lookup(flow()).name == "narrow"

    def test_default_action_when_no_match(self):
        table = PolicyTable(default_action=PolicyAction.DROP)
        assert table.lookup(flow()) is None
        assert table.effective_action(flow()) is PolicyAction.DROP

    def test_default_cannot_be_chain(self):
        with pytest.raises(ValueError):
            PolicyTable(default_action=PolicyAction.CHAIN)

    def test_duplicate_names_rejected(self):
        table = PolicyTable()
        table.add(Policy(name="p", selector=FlowSelector(),
                         action=PolicyAction.ALLOW))
        with pytest.raises(ValueError):
            table.add(Policy(name="p", selector=FlowSelector(),
                             action=PolicyAction.DROP))

    def test_remove_policy(self):
        table = PolicyTable()
        table.add(Policy(name="p", selector=FlowSelector(),
                         action=PolicyAction.DROP))
        removed = table.remove("p")
        assert removed.name == "p"
        assert table.effective_action(flow()) is PolicyAction.ALLOW
        assert table.remove("p") is None

    def test_lookup_is_side_effect_free(self):
        table = PolicyTable()
        table.add(Policy(name="p", selector=FlowSelector(),
                         action=PolicyAction.ALLOW))
        table.lookup(flow())
        table.effective_action(flow())
        assert table.lookup(flow()).hits == 0

    def test_record_hit_counts_enforcements(self):
        table = PolicyTable()
        table.add(Policy(name="p", selector=FlowSelector(),
                         action=PolicyAction.ALLOW))
        policy = table.lookup(flow())
        table.record_hit(policy)
        table.record_hit(policy)
        assert table.lookup(flow()).hits == 2

    def test_match_reports_rows_scanned(self):
        table = PolicyTable()
        table.add(Policy(name="narrow", selector=FlowSelector(tp_dst=80),
                         action=PolicyAction.ALLOW, priority=200))
        table.add(Policy(name="wide", selector=FlowSelector(),
                         action=PolicyAction.ALLOW, priority=100))
        policy, scanned = table.match(flow())
        assert policy.name == "narrow" and scanned == 1
        policy, scanned = table.match(flow(tp_dst=22))
        assert policy.name == "wide" and scanned == 2
        table.remove("wide")
        miss, scanned = table.match(flow(tp_dst=22))
        assert miss is None and scanned == 1

    def test_version_bumps_on_change(self):
        table = PolicyTable()
        v0 = table.version
        table.add(Policy(name="p", selector=FlowSelector(),
                         action=PolicyAction.ALLOW))
        assert table.version == v0 + 1
        table.remove("p")
        assert table.version == v0 + 2

    def test_iteration_and_len(self):
        table = PolicyTable()
        for index in range(3):
            table.add(Policy(name=f"p{index}", selector=FlowSelector(),
                             action=PolicyAction.ALLOW, priority=index))
        assert len(table) == 3
        priorities = [p.priority for p in table]
        assert priorities == sorted(priorities, reverse=True)
