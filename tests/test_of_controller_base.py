"""Unit tests for the NOX-like base: LLDP discovery and lifecycle."""

import pytest

from repro.net.legacy import LegacySwitch
from repro.net.node import connect
from repro.openflow.channel import SecureChannel
from repro.openflow.controller_base import ControllerBase
from repro.openflow.switch import OpenFlowSwitch


class Recorder(ControllerBase):
    def __init__(self, sim, lldp_enabled=True):
        super().__init__(sim, lldp_enabled=lldp_enabled)
        self.discovered = []
        self.timed_out = []

    def on_link_discovered(self, link):
        self.discovered.append(link)

    def on_link_timeout(self, link):
        self.timed_out.append(link)


@pytest.fixture
def fabric(sim):
    """Two OvS through one legacy core, controller attached."""
    core = LegacySwitch(sim, "core", bridge_id=1)
    s1 = OpenFlowSwitch(sim, "s1", dpid=1)
    s2 = OpenFlowSwitch(sim, "s2", dpid=2)
    connect(sim, s1, core)
    connect(sim, s2, core)
    ctrl = Recorder(sim)
    ch1 = SecureChannel(sim, s1, ctrl)
    ch2 = SecureChannel(sim, s2, ctrl)
    ch1.connect()
    ch2.connect()
    return ctrl, (s1, s2), (ch1, ch2)


class TestDiscovery:
    def test_links_discovered_both_directions(self, sim, fabric):
        ctrl, switches, channels = fabric
        sim.run(until=2.0)
        pairs = {(l.src_dpid, l.dst_dpid) for l in ctrl.known_links()}
        assert pairs == {(1, 2), (2, 1)}

    def test_link_between_returns_ports(self, sim, fabric):
        ctrl, switches, channels = fabric
        sim.run(until=2.0)
        link = ctrl.link_between(1, 2)
        assert link is not None
        assert link.src_port == 1 and link.dst_port == 1
        assert ctrl.link_between(1, 9) is None

    def test_links_expire_when_switch_leaves(self, sim, fabric):
        ctrl, switches, channels = fabric
        sim.run(until=2.0)
        channels[1].disconnect()
        sim.run(until=3.0)
        assert ctrl.known_links() == []
        assert 2 not in ctrl.switches

    def test_link_timeout_on_fabric_failure(self, sim, fabric):
        ctrl, switches, channels = fabric
        sim.run(until=2.0)
        assert len(ctrl.known_links()) == 2
        # Cut both uplinks: LLDP stops flowing.
        for switch in switches:
            switch.port(1).link.set_up(False)
        sim.run(until=8.0)
        assert ctrl.known_links() == []
        assert len(ctrl.timed_out) == 2

    def test_own_reflection_ignored(self, sim):
        """An LLDP looped straight back must not create a self-link."""
        ctrl = Recorder(sim)
        switch = OpenFlowSwitch(sim, "s", dpid=1)
        # A hairpin: two ports of the same switch wired together.
        connect(sim, switch, switch, port_a=1, port_b=2)
        SecureChannel(sim, switch, ctrl).connect()
        sim.run(until=2.0)
        assert all(l.src_dpid != l.dst_dpid for l in ctrl.known_links())

    def test_lldp_disabled_mode(self, sim):
        ctrl = Recorder(sim, lldp_enabled=False)
        s1 = OpenFlowSwitch(sim, "s1", dpid=1)
        s2 = OpenFlowSwitch(sim, "s2", dpid=2)
        connect(sim, s1, s2)
        SecureChannel(sim, s1, ctrl).connect()
        SecureChannel(sim, s2, ctrl).connect()
        sim.run(until=3.0)
        assert ctrl.known_links() == []


class TestDualHoming:
    def test_all_port_pairs_discovered(self, sim):
        """Dual-homed switches expose several port pairs per switch
        pair; discovery must record every one (the uplink set)."""
        ctrl = Recorder(sim)
        core_a = LegacySwitch(sim, "core-a", bridge_id=1)
        core_b = LegacySwitch(sim, "core-b", bridge_id=2)
        connect(sim, core_a, core_b)
        s1 = OpenFlowSwitch(sim, "s1", dpid=1)
        s2 = OpenFlowSwitch(sim, "s2", dpid=2)
        for switch in (s1, s2):
            connect(sim, switch, core_a)
            connect(sim, switch, core_b)
        SecureChannel(sim, s1, ctrl).connect()
        SecureChannel(sim, s2, ctrl).connect()
        sim.run(until=3.0)
        pairs_1_to_2 = {
            (l.src_port, l.dst_port)
            for l in ctrl.known_links()
            if l.src_dpid == 1 and l.dst_dpid == 2
        }
        # Port 1 and port 2 of s1 both reach s2 (via either core).
        assert {p for p, _ in pairs_1_to_2} == {1, 2}
        # link_between returns the deterministic lowest pair.
        best = ctrl.link_between(1, 2)
        assert (best.src_port, best.dst_port) == min(pairs_1_to_2)
