"""Integration tests for the LiveSec controller application."""

import pytest

from repro import Policy, PolicyTable, build_livesec_network
from repro.core.events import EventKind
from repro.core.policy import FlowSelector, PolicyAction
from repro.workloads import AttackWebFlow, CbrUdpFlow, HttpFlow

GATEWAY_IP = "10.255.255.254"


class TestDiscovery:
    def test_full_mesh_and_switch_inventory(self, small_net):
        nib = small_net.controller.nib.summary()
        assert nib["switches"] == 2
        assert nib["full_mesh"]

    def test_hosts_learned_with_location(self, small_net):
        controller = small_net.controller
        host = small_net.host("h1_1")
        record = controller.nib.host_by_mac(host.mac)
        assert record is not None
        assert record.ip == host.ip
        attachment = small_net.topology.attachments[host.name]
        assert record.dpid == attachment.switch.dpid
        assert record.port == attachment.switch_port

    def test_host_join_events_emitted(self, small_net):
        joins = small_net.controller.log.query(kind=EventKind.HOST_JOIN)
        assert len(joins) == 3  # 2 hosts + gateway

    def test_uplink_ports_identified(self, small_net):
        controller = small_net.controller
        for switch in small_net.topology.as_switches:
            assert controller.nib.uplink_port(switch.dpid) is not None


class TestEndToEndRouting:
    def test_udp_flow_delivered(self, small_net):
        src = small_net.host("h1_1")
        flow = CbrUdpFlow(small_net.sim, src, GATEWAY_IP, rate_bps=5e6,
                          duration_s=1.0)
        flow.start()
        small_net.run(2.0)
        assert flow.delivered_bytes(small_net.gateway) > 0
        assert small_net.controller.counters["flows_installed"] >= 1

    def test_bidirectional_session(self, small_net):
        h1 = small_net.host("h1_1")
        h2 = small_net.host("h2_1")
        h2.on_app(17, 9000, lambda host, frame: host.send_udp(
            frame.ip().src, 9000, frame.transport().sport, payload=b"pong"))
        h1.send_udp(h2.ip, 1234, 9000, payload=b"ping")
        small_net.run(1.0)
        # The reply used the pre-installed reverse entry: one session.
        assert len(small_net.controller.sessions) == 1
        assert h1.rx_frames >= 1

    def test_ping_between_hosts(self, small_net):
        h1 = small_net.host("h1_1")
        h2 = small_net.host("h2_1")
        h1.ping(h2.ip)
        small_net.run(2.0)
        assert len(h1.ping_rtts) == 1

    def test_session_teardown_on_idle(self, small_net):
        src = small_net.host("h1_1")
        flow = CbrUdpFlow(small_net.sim, src, GATEWAY_IP, rate_bps=5e6,
                          duration_s=0.5)
        flow.start()
        small_net.run(1.0)
        assert len(small_net.controller.sessions) == 1
        small_net.run(10.0)  # idle timeout (5s default) passes
        assert len(small_net.controller.sessions) == 0
        ends = small_net.controller.log.query(kind=EventKind.FLOW_END)
        assert len(ends) == 1
        assert ends[0].data["packets"] > 0

    def test_arp_answered_by_directory_without_fabric_broadcast(
            self, small_net):
        src = small_net.host("h1_1")
        dst = small_net.host("h2_1")
        floods_before = small_net.controller.directory.arp_floods
        src.send_udp(dst.ip, 1, 2)
        small_net.run(1.0)
        assert src.arp_table[dst.ip][0] == dst.mac
        assert small_net.controller.directory.arp_replies >= 1
        assert small_net.controller.directory.arp_floods == floods_before


class TestPolicyEnforcement:
    def test_drop_policy_blocks_flow(self):
        policies = PolicyTable()
        policies.add(Policy(name="no-gw", selector=FlowSelector(
            dst_ip=GATEWAY_IP), action=PolicyAction.DROP))
        net = build_livesec_network(topology="linear", policies=policies,
                                    num_as=2, hosts_per_as=1)
        net.start()
        flow = CbrUdpFlow(net.sim, net.host("h1_1"), GATEWAY_IP,
                          rate_bps=5e6, duration_s=1.0)
        flow.start()
        net.run(2.0)
        assert flow.delivered_bytes(net.gateway) == 0
        assert net.controller.counters["flows_blocked"] == 1

    def test_chain_steers_through_element(self, steering_net):
        src = steering_net.host("h3_1")
        flow = HttpFlow(steering_net.sim, src, GATEWAY_IP, rate_bps=5e6,
                        duration_s=1.0)
        flow.start()
        steering_net.run(2.0)
        assert flow.delivered_bytes(steering_net.gateway) > 0
        processed = sum(e.processed_packets for e in steering_net.elements)
        assert processed > 0
        steered = steering_net.controller.log.query(
            kind=EventKind.FLOW_STEERED)
        assert len(steered) == 1

    def test_attack_detected_and_blocked(self, steering_net):
        src = steering_net.host("h1_1")
        flow = AttackWebFlow(steering_net.sim, src, GATEWAY_IP,
                             rate_bps=2e6, duration_s=3.0)
        flow.start()
        steering_net.run(4.0)
        attacks = steering_net.controller.log.query(
            kind=EventKind.ATTACK_DETECTED)
        blocks = steering_net.controller.log.query(
            kind=EventKind.FLOW_BLOCKED)
        assert len(attacks) >= 1
        assert len(blocks) >= 1
        assert attacks[0].data["user_mac"] == src.mac

    def test_no_element_fallback_allow(self, ids_policy_table):
        net = build_livesec_network(
            topology="linear", policies=ids_policy_table,
            num_as=2, hosts_per_as=1, on_no_element="allow",
        )
        net.start()
        flow = CbrUdpFlow(net.sim, net.host("h1_1"), GATEWAY_IP,
                          rate_bps=5e6, duration_s=1.0)
        flow.start()
        net.run(2.0)
        assert flow.delivered_bytes(net.gateway) > 0
        assert net.controller.counters["no_element_fallback"] == 1

    def test_no_element_fallback_drop(self, ids_policy_table):
        net = build_livesec_network(
            topology="linear", policies=ids_policy_table,
            num_as=2, hosts_per_as=1, on_no_element="drop",
        )
        net.start()
        flow = CbrUdpFlow(net.sim, net.host("h1_1"), GATEWAY_IP,
                          rate_bps=5e6, duration_s=1.0)
        flow.start()
        net.run(2.0)
        assert flow.delivered_bytes(net.gateway) == 0


class TestElementManagement:
    def test_elements_register_via_messages(self, steering_net):
        registry = steering_net.controller.registry.summary()
        assert registry["online"] == 2
        assert registry["by_type"] == {"ids": 2}

    def test_element_load_events_flow(self, steering_net):
        loads = steering_net.controller.log.query(kind=EventKind.ELEMENT_LOAD)
        assert len(loads) >= 2

    def test_uncertified_element_blocked(self, small_net):
        from repro.elements import IntrusionDetectionElement
        from repro.net.node import connect

        rogue = IntrusionDetectionElement(
            small_net.sim, "rogue", "00:00:00:00:99:99", "10.9.9.9")
        rogue.provision("forged")
        connect(small_net.sim, small_net.topology.as_switches[0], rogue,
                bandwidth_bps=1e9, delay_s=5e-6)
        small_net.run(2.0)
        rejected = small_net.controller.log.query(
            kind=EventKind.ELEMENT_REJECTED)
        assert rejected and rejected[0].data["mac"] == rogue.mac
        assert not small_net.controller.registry.is_element(rogue.mac)
        # And its traffic is blocked at its ingress switch.
        switch = small_net.topology.as_switches[0]
        assert any(
            entry.is_drop and entry.match.dl_src == rogue.mac
            for entry in switch.table
        )

    def test_element_offline_after_silence(self, steering_net):
        element = steering_net.elements[0]
        element.shutdown()
        steering_net.run(10.0)
        record = steering_net.controller.registry.get(element.mac)
        assert not record.online
        offline = steering_net.controller.log.query(
            kind=EventKind.ELEMENT_OFFLINE)
        assert offline and offline[0].data["mac"] == element.mac

    def test_traffic_reroutes_after_element_failure(self, steering_net):
        """Flows steered to a dead element re-steer to the survivor."""
        src = steering_net.host("h3_1")
        flow = HttpFlow(steering_net.sim, src, GATEWAY_IP, rate_bps=4e6)
        flow.start()
        steering_net.run(1.0)
        assigned_mac = next(
            iter(steering_net.controller.sessions)).element_macs[0]
        victim = next(e for e in steering_net.elements
                      if e.mac == assigned_mac)
        victim.shutdown()
        steering_net.run(15.0)
        before = flow.delivered_bytes(steering_net.gateway)
        steering_net.run(3.0)
        after = flow.delivered_bytes(steering_net.gateway)
        flow.stop()
        assert after > before, "traffic did not recover after element death"
        survivor = next(e for e in steering_net.elements if e is not victim)
        assert survivor.processed_packets > 0


class TestHostChurn:
    def test_silent_host_expires_with_leave_event(self):
        net = build_livesec_network(topology="linear", num_as=2,
                                    hosts_per_as=1, host_timeout_s=3.0)
        net.start()
        # h1_1 stays silent; everything ages out except session holders.
        net.run(12.0)
        leaves = net.controller.log.query(kind=EventKind.HOST_LEAVE)
        assert leaves, "silent hosts must age out"

    def test_rejoin_after_expiry(self):
        net = build_livesec_network(topology="linear", num_as=2,
                                    hosts_per_as=1, host_timeout_s=3.0)
        net.start()
        net.run(12.0)
        host = net.host("h1_1")
        host.announce()
        net.run(1.0)
        assert net.controller.nib.host_by_mac(host.mac) is not None


class TestHostMobility:
    def test_same_tick_roam_emits_move_not_join(self, small_net):
        """Regression: a host roaming (e.g. wired -> wifi) within the
        same sim tick it was first learned must emit HOST_MOVE, not a
        second HOST_JOIN -- the old timestamp-based inference saw
        first_seen == last_seen and mislabelled it."""
        controller = small_net.controller
        switches = small_net.topology.as_switches
        mac, ip = "00:00:00:00:aa:01", "10.0.99.1"
        controller._learn_host(mac, ip, switches[0].dpid, 99)
        controller._learn_host(mac, ip, switches[1].dpid, 98)
        moves = controller.log.query(kind=EventKind.HOST_MOVE)
        assert [(e.data["dpid"], e.data["port"]) for e in moves] == [
            (switches[1].dpid, 98)
        ]
        joins = [e for e in controller.log.query(kind=EventKind.HOST_JOIN)
                 if e.data["mac"] == mac]
        assert len(joins) == 1
        record = controller.nib.host_by_mac(mac)
        assert (record.dpid, record.port) == (switches[1].dpid, 98)

    def test_refresh_at_same_port_is_not_a_move(self, small_net):
        controller = small_net.controller
        switch = small_net.topology.as_switches[0]
        mac = "00:00:00:00:aa:02"
        controller._learn_host(mac, "10.0.99.2", switch.dpid, 97)
        controller._learn_host(mac, "10.0.99.2", switch.dpid, 97)
        assert not controller.log.query(kind=EventKind.HOST_MOVE)


class TestFlowStatsSubscription:
    @staticmethod
    def _poll_stats(net):
        """Install a flow entry, then ask every switch for flow stats."""
        flow = CbrUdpFlow(net.sim, net.host("h1_1"), GATEWAY_IP,
                          rate_bps=5e6, duration_s=1.0)
        flow.start()
        net.run(2.0)
        for dpid in list(net.controller.switches):
            net.controller.request_flow_stats(dpid)
        net.run(1.0)

    def test_subscriber_receives_stats(self, small_net):
        seen = []
        small_net.controller.subscribe_flow_stats(seen.append)
        self._poll_stats(small_net)
        assert seen, "flow-stats replies should reach the subscriber"
        assert all(hasattr(reply, "entries") for reply in seen)

    def test_unsubscribe_stops_delivery_and_is_idempotent(self, small_net):
        seen = []
        unsubscribe = small_net.controller.subscribe_flow_stats(seen.append)
        unsubscribe()
        unsubscribe()  # second call must be a no-op
        self._poll_stats(small_net)
        assert seen == []

    def test_legacy_listener_list_is_deprecated_but_works(self, small_net):
        seen = []
        with pytest.warns(DeprecationWarning):
            small_net.controller.flow_stats_listeners.append(seen.append)
        self._poll_stats(small_net)
        assert seen


class TestMonitoring:
    def test_link_load_events_from_port_stats(self, small_net):
        flow = CbrUdpFlow(small_net.sim, small_net.host("h1_1"), GATEWAY_IP,
                          rate_bps=20e6, duration_s=3.0)
        flow.start()
        small_net.run(4.0)
        loads = small_net.controller.log.query(kind=EventKind.LINK_LOAD)
        assert loads
        assert any(e.data["utilization"] > 0.01 for e in loads)

    def test_status_overview(self, small_net):
        status = small_net.status()
        assert set(status) == {"nib", "registry", "sessions", "counters",
                               "events"}


class TestServiceMessageChannel:
    def test_element_messages_never_get_flow_entries(self, steering_net):
        """Section III.D.1: the controller must not install an entry
        for the element->controller UDP flow, so every message keeps
        reaching it."""
        element = steering_net.elements[0]
        switch = element.port(1).peer().node
        reports_before = steering_net.controller.registry.get(
            element.mac).reports
        steering_net.run(3.0)
        reports_after = steering_net.controller.registry.get(
            element.mac).reports
        # Messages kept flowing (several report intervals passed)...
        assert reports_after >= reports_before + 4
        # ...and no flow entry matches the message channel.
        from repro.core.messages import SERVICE_MESSAGE_PORT

        assert not any(
            entry.match.tp_dst == SERVICE_MESSAGE_PORT
            for entry in switch.table
        )

    def test_dhcp_served_by_directory(self, small_net):
        from repro.net.packet import Dhcp, Ethernet

        host = small_net.host("h1_1")
        offers = []
        original = host.receive

        def spy(frame, in_port):
            if isinstance(frame.payload, Dhcp):
                offers.append(frame.payload)
                return
            original(frame, in_port)

        host.receive = spy
        discover = Ethernet(src=host.mac, dst="ff:ff:ff:ff:ff:ff",
                            ethertype=0x0800, size=300)
        discover.payload = Dhcp(opcode="discover", client_mac=host.mac)
        host.send(discover, 1)
        small_net.run(1.0)
        assert offers and offers[0].opcode == "offer"
        assert offers[0].offered_ip is not None
