"""Tests for the deterministic fault-injection harness (repro.faults).

Covers the plan builder's validation, eager target resolution, the
injector's fault actions (element crash/hang/slow-report, switch
disconnect+reconnect, channel chaos), the controller's recovery
machinery they exercise (failover, resync, barrier-acked retries,
fail-open/fail-closed), and the determinism contract: two same-seed
runs replay event for event.
"""

import pytest

from repro.core.deployment import build_livesec_network
from repro.core.events import EventKind
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultTargetError,
    run_chaos_scenario,
)
from repro.faults.scenarios import GATEWAY_IP, chaos_policy_table
from repro.workloads import CbrUdpFlow


def build_net(fail_mode="open", num_elements=2, num_as=2, hosts_per_as=1):
    return build_livesec_network(
        topology="linear",
        policies=chaos_policy_table(fail_mode),
        elements=[("ids", num_elements)],
        num_as=num_as,
        hosts_per_as=hosts_per_as,
        element_timeout_s=1.5,
        dispatcher="polling",
    )


def start_traffic(net, duration_s, num_hosts=None):
    hosts = [h for h in net.topology.hosts if h is not net.topology.gateway]
    for host in hosts[:num_hosts]:
        CbrUdpFlow(net.sim, host, GATEWAY_IP,
                   rate_bps=2e6, duration_s=duration_s).start()


class TestFaultPlanBuilder:
    def test_chaining_and_iteration(self):
        plan = (FaultPlan(seed=7)
                .element_crash(5.0, "ids-1")
                .channel_chaos(2.0, "*", drop_rate=0.1, until_s=8.0))
        assert len(plan) == 2
        assert [f.kind for f in plan] == ["element-crash", "channel-chaos"]

    def test_describe_is_schedule_ordered(self):
        plan = (FaultPlan()
                .element_crash(5.0, "ids-1")
                .switch_disconnect(1.0, "ovs1"))
        lines = plan.describe()
        assert lines[0].startswith("t=1s switch-disconnect")
        assert lines[1].startswith("t=5s element-crash")

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan().element_crash(-1.0, "ids-1")

    def test_restart_must_follow_crash(self):
        with pytest.raises(ValueError):
            FaultPlan().element_crash(5.0, "ids-1", restart_at_s=5.0)

    def test_hang_duration_must_be_positive(self):
        with pytest.raises(ValueError):
            FaultPlan().element_hang(1.0, "ids-1", duration_s=0.0)

    def test_slow_report_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            FaultPlan().element_slow_report(1.0, "ids-1", interval_s=-1.0)

    def test_reconnect_must_follow_disconnect(self):
        with pytest.raises(ValueError):
            FaultPlan().switch_disconnect(3.0, "ovs1", reconnect_at_s=2.0)

    def test_link_down_time_must_be_positive(self):
        with pytest.raises(ValueError):
            FaultPlan().link_flap(1.0, "ovs1", "core", down_s=0.0)

    def test_channel_rates_bounded(self):
        with pytest.raises(ValueError):
            FaultPlan().channel_chaos(1.0, "*", drop_rate=1.0)
        with pytest.raises(ValueError):
            FaultPlan().channel_chaos(1.0, "*", duplicate_rate=-0.1)

    def test_channel_until_must_follow_start(self):
        with pytest.raises(ValueError):
            FaultPlan().channel_chaos(5.0, "*", drop_rate=0.1, until_s=5.0)

    def test_channel_directions_validated(self):
        with pytest.raises(ValueError):
            FaultPlan().channel_chaos(1.0, "*", drop_rate=0.1,
                                      directions=("sideways",))


class TestTargetResolution:
    def test_unknown_element_raises_at_arm(self):
        net = build_net()
        injector = FaultInjector(net, FaultPlan().element_crash(1.0, "nope"))
        with pytest.raises(FaultTargetError):
            injector.arm()

    def test_unknown_switch_raises_at_arm(self):
        net = build_net()
        injector = FaultInjector(
            net, FaultPlan().switch_disconnect(1.0, "ovs99"))
        with pytest.raises(FaultTargetError):
            injector.arm()

    def test_unlinked_nodes_raise_at_arm(self):
        # Both nodes exist but share no link (linear wires each OvS to
        # the core, never to each other).
        net = build_net()
        injector = FaultInjector(
            net, FaultPlan().link_flap(1.0, "ovs1", "ovs2", down_s=1.0))
        with pytest.raises(FaultTargetError):
            injector.arm()

    def test_unknown_node_raises_at_arm(self):
        net = build_net()
        injector = FaultInjector(
            net, FaultPlan().link_flap(1.0, "ghost", "core", down_s=1.0))
        with pytest.raises(FaultTargetError):
            injector.arm()

    def test_arm_twice_rejected(self):
        net = build_net()
        injector = FaultInjector(net, FaultPlan())
        injector.arm()
        with pytest.raises(RuntimeError):
            injector.arm()


class TestScenarioValidation:
    def test_bad_fail_mode(self):
        with pytest.raises(ValueError):
            run_chaos_scenario(fail_mode="maybe")

    def test_bad_crash_selector(self):
        with pytest.raises(ValueError):
            run_chaos_scenario(crash="some")


class TestCrashRecovery:
    def test_crash_with_healthy_peers_recovers_every_session(self):
        report = run_chaos_scenario(seed=3, fail_mode="open", crash="one",
                                    duration_s=10.0, num_hosts=3)
        assert report.injected.get("element-crash") == 1
        assert report.affected_sessions > 0
        assert report.recovered_sessions == report.affected_sessions
        assert report.unrecovered_sessions == 0
        # The recovery histogram actually observed the failovers, on
        # the simulator clock, bounded by liveness timeout + report
        # interval + expiry sweep.
        assert report.time_to_recover_s["count"] == report.affected_sessions
        assert 0.0 < report.time_to_recover_s["max"] <= 3.5
        assert 0.0 < report.time_to_detect_s["max"] <= 3.5

    def test_recovery_metrics_recorded(self):
        # The acceptance shape, asserted on the raw registry: crash at
        # t=5 with two healthy peers -> recovered == affected, and the
        # time-to-recover histogram actually observed the failovers.
        net = build_net(num_elements=3, hosts_per_as=2)
        plan = FaultPlan().element_crash(5.0, net.elements[0].name)
        FaultInjector(net, plan).arm()
        net.start()
        start_traffic(net, duration_s=10.0)
        net.run(10.0)
        snapshot = net.controller.metrics.snapshot()
        counters = snapshot.counters()
        affected = counters["faults.affected_sessions"]
        assert affected > 0
        assert counters["faults.recovered_sessions"] == affected
        recover = snapshot.get("recovery.time_to_recover_s")
        assert recover.count == affected
        assert recover.max > 0.0

    def test_crash_all_fail_open_continues_unsteered(self):
        report = run_chaos_scenario(seed=3, fail_mode="open", crash="all",
                                    duration_s=10.0, num_hosts=3)
        assert report.affected_sessions > 0
        assert report.failed_open_sessions == report.affected_sessions
        assert report.recovered_sessions == 0
        assert report.unrecovered_sessions == 0

    def test_crash_all_fail_closed_blocks_sessions(self):
        report = run_chaos_scenario(seed=3, fail_mode="closed", crash="all",
                                    duration_s=10.0, num_hosts=3)
        assert report.affected_sessions > 0
        assert report.blocked_sessions == report.affected_sessions
        assert report.unrecovered_sessions == 0

    def test_fail_closed_installs_ingress_drop_entries(self):
        # Crash after the warmup-started session exists; stop before
        # the now-shadowed steering entries idle out (their FlowRemoved
        # ends the session record -- the ingress drop entry, with no
        # timeouts, is what keeps the user blocked).
        net = build_net(fail_mode="closed", num_elements=1)
        plan = FaultPlan().element_crash(3.0, net.elements[0].name)
        FaultInjector(net, plan).arm()
        net.start()
        start_traffic(net, duration_s=8.0, num_hosts=1)
        net.run(4.0)
        sessions = list(net.controller.sessions)
        assert sessions and all(s.blocked for s in sessions)
        ingress = net.topology.as_switches[0]
        drops = [e for e in ingress.table
                 if e.priority == 200 and e.actions == ()]
        assert drops

    def test_crashed_element_restart_recertifies(self):
        net = build_net(num_elements=1)
        element = net.elements[0]
        plan = FaultPlan().element_crash(2.0, element.name, restart_at_s=6.0)
        injector = FaultInjector(net, plan)
        injector.arm()
        net.start()
        net.run(10.0)
        record = net.controller.registry.get(element.mac)
        assert record.offline_count == 1
        assert record.recovered_count == 1
        assert record.online
        assert injector.summary()["injected"]["element-restart"] == 1


class TestHangAndSlowReport:
    def test_hang_expires_then_self_recovers(self):
        net = build_net(num_elements=1)
        element = net.elements[0]
        plan = FaultPlan().element_hang(2.0, element.name, duration_s=3.0)
        FaultInjector(net, plan).arm()
        net.start()
        net.run(8.0)
        record = net.controller.registry.get(element.mac)
        # Silent past the 1.5s liveness timeout -> expired; the daemon
        # keeps ticking, so the first post-hang report re-certifies.
        assert record.offline_count == 1
        assert record.recovered_count == 1
        assert record.online

    def test_slow_report_expires_then_restores(self):
        net = build_net(num_elements=1)
        element = net.elements[0]
        plan = FaultPlan().element_slow_report(
            2.0, element.name, interval_s=6.0,
            restore_at_s=6.0, restore_interval_s=0.5,
        )
        FaultInjector(net, plan).arm()
        net.start()
        net.run(10.0)
        record = net.controller.registry.get(element.mac)
        assert record.offline_count >= 1
        assert record.recovered_count >= 1
        assert record.online


class TestSwitchDisconnect:
    def test_reconnect_triggers_flow_table_resync(self):
        # Disconnect after the session's rules are on ovs1 (traffic
        # starts when the warmup ends at t=2), so the reconnect has
        # state to resync.
        net = build_net(num_elements=2)
        plan = FaultPlan().switch_disconnect(3.0, "ovs1", reconnect_at_s=4.0)
        injector = FaultInjector(net, plan)
        injector.arm()
        net.start()
        start_traffic(net, duration_s=6.0, num_hosts=1)
        net.run(6.0)
        injected = injector.summary()["injected"]
        assert injected["switch-disconnect"] == 1
        assert injected["switch-reconnect"] == 1
        kinds = [event.kind for event in net.controller.log.all()]
        assert EventKind.SWITCH_RESYNC in kinds
        counters = net.controller.metrics.snapshot().counters()
        assert counters.get("controller.rules_resynced", 0) > 0


class TestChannelChaos:
    def test_lossy_channel_forces_retries_but_recovers(self):
        report = run_chaos_scenario(seed=11, fail_mode="open", crash="one",
                                    duration_s=9.0, num_hosts=2,
                                    channel_drop_rate=0.2)
        assert report.install_retries > 0
        assert report.affected_sessions > 0
        assert report.recovered_sessions == report.affected_sessions
        assert report.unrecovered_sessions == 0


class TestDeterminism:
    def test_same_seed_same_event_log(self):
        kwargs = dict(seed=5, fail_mode="open", crash="one",
                      duration_s=9.0, num_hosts=2, channel_drop_rate=0.2)
        first = run_chaos_scenario(**kwargs)
        second = run_chaos_scenario(**kwargs)
        assert first.event_lines == second.event_lines
        assert first.event_digest == second.event_digest

    def test_different_seed_diverges_under_chaos(self):
        # The seed only matters where the RNG is drawn: with channel
        # chaos active, different seeds drop different messages and the
        # logs diverge.
        first = run_chaos_scenario(seed=1, fail_mode="open", crash="one",
                                   duration_s=9.0, num_hosts=2,
                                   channel_drop_rate=0.2)
        second = run_chaos_scenario(seed=2, fail_mode="open", crash="one",
                                    duration_s=9.0, num_hosts=2,
                                    channel_drop_rate=0.2)
        assert first.event_digest != second.event_digest

    def test_fault_injections_appear_in_event_log(self):
        report = run_chaos_scenario(seed=0, fail_mode="open", crash="one",
                                    duration_s=7.0, num_hosts=1)
        assert any(EventKind.FAULT_INJECTED in line
                   for line in report.event_lines)
