"""Tests for the ECMP legacy-switching option."""

import pytest

from repro.net import packet as pkt
from repro.net.ecmp import EcmpLegacySwitch
from repro.net.host import Host
from repro.net.node import connect


def make_host(sim, index):
    return Host(sim, f"h{index}", pkt.mac_address(index), pkt.ip_address(index))


@pytest.fixture
def trunked(sim):
    """Two ECMP switches joined by two parallel links, a host on each."""
    s1 = EcmpLegacySwitch(sim, "s1", bridge_id=1)
    s2 = EcmpLegacySwitch(sim, "s2", bridge_id=2)
    connect(sim, s1, s2, port_a=1, port_b=1)
    connect(sim, s1, s2, port_a=2, port_b=2)
    s1.add_ecmp_group([1, 2])
    s2.add_ecmp_group([1, 2])
    h1, h2 = make_host(sim, 1), make_host(sim, 2)
    connect(sim, s1, h1, port_a=3)
    connect(sim, s2, h2, port_a=3)
    return s1, s2, h1, h2


class TestConfiguration:
    def test_group_needs_two_ports(self, sim):
        switch = EcmpLegacySwitch(sim, "s", bridge_id=1)
        with pytest.raises(ValueError):
            switch.add_ecmp_group([1])

    def test_port_cannot_join_two_groups(self, sim):
        switch = EcmpLegacySwitch(sim, "s", bridge_id=1)
        switch.add_ecmp_group([1, 2])
        with pytest.raises(ValueError):
            switch.add_ecmp_group([2, 3])

    def test_group_of_ungrouped_port(self, sim):
        switch = EcmpLegacySwitch(sim, "s", bridge_id=1)
        assert switch.group_of(7) == (7,)


class TestForwarding:
    def test_end_to_end_over_trunk(self, sim, trunked):
        s1, s2, h1, h2 = trunked
        h2.announce()
        sim.run(until=0.2)
        h1.send_udp(h2.ip, 1, 2, payload=b"hi")
        sim.run(until=0.5)
        assert h2.rx_frames == 1

    def test_broadcast_uses_single_trunk_member(self, sim, trunked):
        s1, s2, h1, h2 = trunked
        h1.announce()
        sim.run(until=0.2)
        # Exactly one copy arrives at h2 (no duplication over the
        # parallel links).
        assert h2.port(1).rx_packets == 1
        assert s1.ports[2].tx_packets == 0  # floods pinned to member 1

    def test_flows_spread_across_members(self, sim, trunked):
        s1, s2, h1, h2 = trunked
        h2.announce()
        sim.run(until=0.2)
        # Many distinct flows: both members must carry traffic.
        for sport in range(1000, 1100):
            h1.send_udp(h2.ip, sport, 9000, size=500)
        sim.run(until=1.0)
        loads = s1.group_port_loads([1, 2])
        assert loads[1] > 0 and loads[2] > 0
        assert h2.rx_frames == 100
        # Roughly even split (hashing): neither member above 75%.
        total = sum(loads.values())
        assert max(loads.values()) / total < 0.75

    def test_one_flow_stays_on_one_member(self, sim, trunked):
        s1, s2, h1, h2 = trunked
        h2.announce()
        sim.run(until=0.2)
        base = dict(s1.group_port_loads([1, 2]))
        for __ in range(50):
            h1.send_udp(h2.ip, 4242, 9000, size=500)
        sim.run(until=1.0)
        after = s1.group_port_loads([1, 2])
        deltas = [after[p] - base[p] for p in (1, 2)]
        # All 50 packets of the flow rode exactly one member.
        assert sorted(deltas) == [0, 50 * 500]
        assert h2.rx_frames == 50

    def test_learning_is_stable_across_members(self, sim, trunked):
        s1, s2, h1, h2 = trunked
        h1.announce()
        h2.announce()
        sim.run(until=0.2)
        # h2's replies can arrive on either member at s1; the learned
        # port must be the canonical group head, not flapping.
        for sport in range(2000, 2020):
            h2.send_udp(h1.ip, sport, 9000, size=200)
        sim.run(until=1.0)
        learned_port, __ = s1.mac_table[h2.mac]
        assert learned_port == 1  # canonical member
        assert h1.rx_frames == 20
