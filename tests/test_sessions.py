"""Unit tests for bidirectional session tracking."""


from repro.core.sessions import SessionTable
from repro.net.packet import FlowNineTuple


def flow(tp_src=1000):
    return FlowNineTuple(
        vlan=None, dl_src="mA", dl_dst="mB", dl_type=0x0800,
        nw_src="10.0.0.1", nw_dst="10.0.0.2", nw_proto=6,
        tp_src=tp_src, tp_dst=80,
    )


def make_session(table, tp_src=1000, elements=()):
    return table.create(
        flow=flow(tp_src),
        src_mac="mA",
        dst_mac="mB",
        policy_name="p",
        element_macs=tuple(elements),
        rules=[],
        now=1.0,
    )


class TestLifecycle:
    def test_create_and_lookup_both_directions(self):
        table = SessionTable()
        session = make_session(table)
        assert table.lookup(flow()) is session
        assert table.lookup(flow().reversed()) is session
        assert table.by_id(session.session_id) is session
        assert len(table) == 1
        assert table.created == 1

    def test_end_removes_both_directions(self):
        table = SessionTable()
        session = make_session(table)
        table.end(session)
        assert table.lookup(flow()) is None
        assert table.lookup(flow().reversed()) is None
        assert table.by_id(session.session_id) is None
        assert table.ended == 1

    def test_end_is_idempotent(self):
        table = SessionTable()
        session = make_session(table)
        table.end(session)
        table.end(session)
        assert table.ended == 1

    def test_ids_are_unique_and_monotonic(self):
        table = SessionTable()
        ids = [make_session(table, tp_src=1000 + i).session_id
               for i in range(5)]
        assert ids == sorted(set(ids))

    def test_explicit_session_id(self):
        table = SessionTable()
        session = table.create(flow(), "mA", "mB", None, (), [], now=0.0,
                               session_id=42)
        assert table.by_id(42) is session


class TestQueries:
    def test_sessions_via_element(self):
        table = SessionTable()
        with_element = make_session(table, tp_src=1, elements=("e1",))
        make_session(table, tp_src=2)
        assert table.sessions_via_element("e1") == [with_element]
        assert table.sessions_via_element("e2") == []

    def test_sessions_of_user_matches_either_end(self):
        table = SessionTable()
        session = make_session(table)
        assert table.sessions_of_user("mA") == [session]
        assert table.sessions_of_user("mB") == [session]
        assert table.sessions_of_user("mZ") == []

    def test_is_steered(self):
        table = SessionTable()
        assert make_session(table, tp_src=1, elements=("e1",)).is_steered
        assert not make_session(table, tp_src=2).is_steered

    def test_iteration(self):
        table = SessionTable()
        created = {make_session(table, tp_src=1000 + i).session_id
                   for i in range(3)}
        assert {s.session_id for s in table} == created
