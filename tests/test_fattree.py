"""Tests for the fat-tree legacy fabric and LiveSec on top of it."""

import pytest

from repro.core.deployment import LiveSecNetwork
from repro.core.controller import LiveSecController
from repro.core.visualization import MonitoringComponent
from repro.net.fattree import build_fat_tree, fat_tree_topology
from repro.net.simulator import Simulator
from repro.workloads import CbrUdpFlow

GATEWAY_IP = "10.255.255.254"


class TestConstruction:
    def test_k4_shape(self, sim):
        tree = build_fat_tree(sim, k=4)
        assert len(tree.core) == 4
        assert sum(len(pod) for pod in tree.aggregation) == 8
        assert sum(len(pod) for pod in tree.edge) == 8
        assert len(tree.all_switches()) == 20
        assert len(tree.edge_switches()) == 8

    def test_k2_degenerate(self, sim):
        tree = build_fat_tree(sim, k=2)
        assert len(tree.core) == 1
        assert len(tree.all_switches()) == 1 + 2 + 2

    def test_odd_k_rejected(self, sim):
        with pytest.raises(ValueError):
            build_fat_tree(sim, k=3)

    def test_ecmp_groups_on_uplinks(self, sim):
        tree = build_fat_tree(sim, k=4)
        edge = tree.edge[0][0]
        # Two uplinks (to the two pod aggregation switches), grouped.
        groups = {edge.group_of(p.number) for p in edge.attached_ports()}
        assert any(len(group) == 2 for group in groups)


class TestBroadcastSafety:
    def test_broadcast_reaches_everyone_exactly_once(self, sim):
        """The fat tree has physical loops; group-aware flooding must
        deliver one copy per edge and never melt down."""
        from repro.net import packet as pkt
        from repro.net.host import Host
        from repro.net.node import connect

        tree = build_fat_tree(sim, k=4)
        hosts = []
        copies = {}
        for index, edge in enumerate(tree.edge_switches()):
            host = Host(sim, f"h{index}", pkt.mac_address(index + 1),
                        pkt.ip_address(index + 1))
            connect(sim, edge, host)
            copies[host.name] = 0

            def spy(frame, in_port, host=host, original=host.receive):
                if frame.ethertype == pkt.ETH_TYPE_ARP:
                    copies[host.name] += 1
                original(frame, in_port)

            host.receive = spy
            hosts.append(host)
        sim.run(until=0.5)
        hosts[0].announce()
        sim.run(until=1.5)
        expected = {h.name: 1 for h in hosts[1:]}
        expected[hosts[0].name] = 0
        assert copies == expected


class TestLiveSecOverFatTree:
    def _deploy(self):
        sim = Simulator()
        topo = fat_tree_topology(sim, k=4, hosts_per_edge=1)
        controller = LiveSecController(sim)
        monitoring = MonitoringComponent(controller.log)
        net = LiveSecNetwork(sim=sim, topology=topo, controller=controller,
                             monitoring=monitoring)
        net._connect_channels(0.5e-3)
        net.start()
        return net

    def test_full_mesh_discovered_over_fabric(self):
        net = self._deploy()
        summary = net.controller.nib.summary()
        assert summary["switches"] == 8
        assert summary["full_mesh"], (
            "LLDP must see the logical full mesh through the fat tree"
        )

    def test_cross_pod_traffic_flows(self):
        net = self._deploy()
        src = net.host("h1_1")    # pod 1
        dst = net.host("h8_1")    # pod 4
        flow = CbrUdpFlow(net.sim, src, dst.ip, rate_bps=5e6,
                          duration_s=1.0)
        flow.start()
        net.run(2.5)
        assert flow.delivered_bytes(dst) > 0

    def test_gateway_reachable_from_every_pod(self):
        net = self._deploy()
        flows = []
        for index in (2, 4, 6, 8):
            src = net.host(f"h{index}_1")
            flows.append(CbrUdpFlow(net.sim, src, GATEWAY_IP,
                                    rate_bps=3e6, duration_s=1.0).start())
        net.run(2.5)
        for flow in flows:
            assert flow.delivered_bytes(net.gateway) > 0
