"""Unit tests for the OF Wi-Fi AP shared-medium model."""

import pytest

from repro.net import packet as pkt
from repro.net.host import Host
from repro.net.node import Node, connect
from repro.net.wifi import AirMedium, WifiAccessPoint
from repro.openflow import messages as msg
from repro.openflow.actions import Output
from repro.openflow.channel import SecureChannel
from repro.openflow.controller_base import ControllerBase
from repro.openflow.match import Match


class Sink(Node):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def receive(self, frame, in_port):
        self.received.append((self.sim.now, frame))


class TestAirMedium:
    def test_reserve_serializes(self):
        medium = AirMedium(bandwidth_bps=1e6)
        done1 = medium.reserve(0.0, 1250)  # 10 ms
        done2 = medium.reserve(0.0, 1250)
        assert done1 == pytest.approx(0.010)
        assert done2 == pytest.approx(0.020)

    def test_reserve_after_idle(self):
        medium = AirMedium(bandwidth_bps=1e6)
        medium.reserve(0.0, 1250)
        done = medium.reserve(5.0, 1250)
        assert done == pytest.approx(5.010)

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            AirMedium(bandwidth_bps=0)


class SimpleForwarder(ControllerBase):
    """Installs a static forward-all rule on join (port a -> port b)."""

    def __init__(self, sim, out_port):
        super().__init__(sim, lldp_enabled=False)
        self.out_port = out_port

    def on_switch_join(self, handle):
        self.send_flow_mod(handle.dpid, msg.FlowMod.ADD, Match(),
                           actions=(Output(self.out_port),))


class TestAccessPoint:
    def test_attach_station_wires_wireless_link(self, sim):
        ap = WifiAccessPoint(sim, "ap", dpid=1)
        station = Host(sim, "sta", "00:00:00:00:00:01", "10.0.0.1",
                       wireless=True)
        link = ap.attach_station(station)
        assert link.medium is ap.medium
        assert station.port(1).link is link
        assert ap.stations == [station]

    def test_stations_share_air_capacity(self, sim):
        """Two stations sending flat out split the 43 Mbps air."""
        ap = WifiAccessPoint(sim, "ap", dpid=1, air_bandwidth_bps=10e6)
        uplink_sink = Sink(sim, "uplink")
        connect(sim, ap, uplink_sink, bandwidth_bps=1e9)
        uplink_port = 1 if ap.port(1).is_attached else 2
        ctrl = SimpleForwarder(sim, out_port=uplink_port)
        SecureChannel(sim, ap, ctrl).connect()
        stations = []
        for index in range(2):
            station = Host(sim, f"sta{index}", pkt.mac_address(index + 1),
                           pkt.ip_address(index + 1), wireless=True)
            ap.attach_station(station)
            stations.append(station)
        sim.run(until=0.1)

        # Each station offers 10 Mbps; the shared 10 Mbps air allows
        # only ~10 Mbps total.
        def emit(station, count=200):
            frame = pkt.make_udp(station.mac, "ff:ee:00:00:00:01",
                                 station.ip, "10.9.9.9", 1, 2, size=1250)
            station.send(frame, 1)
            if count > 1:
                sim.schedule(0.001, emit, station, count - 1)

        for station in stations:
            emit(station)
        sim.run(until=2.0)
        # Everything is eventually delivered, but the *pace* is set by
        # the shared 10 Mbps air: 400 x 1250 B = 4 Mbit needs ~0.4 s.
        times = [t for t, __ in uplink_sink.received]
        assert len(times) == 400
        duration = max(times) - min(times)
        rate_bps = 400 * 1250 * 8 / duration
        assert rate_bps <= 10e6 * 1.1
        assert rate_bps >= 10e6 * 0.8

    def test_ap_is_openflow_datapath(self, sim):
        ap = WifiAccessPoint(sim, "ap", dpid=42)
        ctrl = SimpleForwarder(sim, out_port=5)
        SecureChannel(sim, ap, ctrl).connect()
        sim.run(until=sim.now + 0.2)
        assert 42 in ctrl.switches
