"""Unit tests for the OpenFlow 12-tuple match."""

import dataclasses

import pytest

from repro.net import packet as pkt
from repro.net.packet import extract_nine_tuple
from repro.openflow.match import Match, frame_index_key


@pytest.fixture
def tcp_frame():
    return pkt.make_tcp("m1", "m2", "1.1.1.1", "2.2.2.2", 1000, 80,
                        payload=b"x", flags="S")


class TestExactMatch:
    def test_from_frame_matches_its_frame(self, tcp_frame):
        match = Match.from_frame(tcp_frame, in_port=3)
        assert match.matches(tcp_frame, 3)

    def test_in_port_mismatch(self, tcp_frame):
        match = Match.from_frame(tcp_frame, in_port=3)
        assert not match.matches(tcp_frame, 4)

    def test_field_mismatches(self, tcp_frame):
        base = Match.from_frame(tcp_frame, in_port=1)
        other = pkt.make_tcp("m1", "m2", "1.1.1.1", "2.2.2.2", 1000, 81)
        assert not base.matches(other, 1)
        other = pkt.make_tcp("m1", "m3", "1.1.1.1", "2.2.2.2", 1000, 80)
        assert not base.matches(other, 1)
        other = pkt.make_tcp("m1", "m2", "1.1.1.9", "2.2.2.2", 1000, 80)
        assert not base.matches(other, 1)
        other = pkt.make_udp("m1", "m2", "1.1.1.1", "2.2.2.2", 1000, 80)
        assert not base.matches(other, 1)


class TestWildcards:
    def test_empty_match_matches_everything(self, tcp_frame):
        assert Match().matches(tcp_frame, 7)
        arp = pkt.make_arp_request("m1", "1.1.1.1", "2.2.2.2")
        assert Match().matches(arp, 1)

    def test_partial_match(self, tcp_frame):
        match = Match(dl_type=pkt.ETH_TYPE_IP, tp_dst=80)
        assert match.matches(tcp_frame, 1)
        udp = pkt.make_udp("a", "b", "3.3.3.3", "4.4.4.4", 5, 80)
        assert match.matches(udp, 9)

    def test_transport_fields_fail_on_non_ip(self):
        arp = pkt.make_arp_request("m1", "1.1.1.1", "2.2.2.2")
        assert not Match(tp_dst=80).matches(arp, 1)
        assert not Match(nw_src="1.1.1.1").matches(arp, 1)

    def test_transport_fields_fail_on_icmp(self):
        echo = pkt.make_icmp_echo("m1", "m2", "1.1.1.1", "2.2.2.2")
        assert not Match(tp_src=1).matches(echo, 1)
        assert Match(nw_proto=pkt.IP_PROTO_ICMP).matches(echo, 1)

    def test_wildcard_count(self, tcp_frame):
        assert Match().wildcard_count() == 12
        exact = Match.from_frame(tcp_frame, in_port=1)
        # vlan_pcp and nw_tos stay wild for an untagged frame; vlan too.
        assert exact.wildcard_count() == 3

    def test_vlan_matching(self):
        tagged = pkt.make_udp("a", "b", "1.1.1.1", "2.2.2.2", 1, 2, vlan=10)
        assert Match(dl_vlan=10).matches(tagged, 1)
        assert not Match(dl_vlan=11).matches(tagged, 1)


class TestNineTupleBridge:
    def test_from_nine_tuple_roundtrip(self, tcp_frame):
        nine = extract_nine_tuple(tcp_frame)
        match = Match.from_nine_tuple(nine, in_port=2)
        assert match.matches(tcp_frame, 2)
        assert match.in_port == 2
        assert match.tp_dst == 80

    def test_reply_direction_match(self, tcp_frame):
        nine = extract_nine_tuple(tcp_frame).reversed()
        match = Match.from_nine_tuple(nine)
        reply = pkt.make_tcp("m2", "m1", "2.2.2.2", "1.1.1.1", 80, 1000)
        assert match.matches(reply, 5)
        assert not match.matches(tcp_frame, 5)


class TestExactIndexKey:
    """The hash-index contract: a match is indexable exactly when every
    frame it accepts produces the same ``frame_index_key``."""

    def test_exact_tcp_match_is_indexable(self, tcp_frame):
        match = Match.from_frame(tcp_frame, in_port=3)
        key = match.exact_index_key()
        assert key is not None
        assert key == frame_index_key(tcp_frame, 3)

    def test_exact_matches_for_every_kind_are_indexable(self):
        frames = [
            pkt.make_udp("m1", "m2", "1.1.1.1", "2.2.2.2", 5, 53),
            pkt.make_icmp_echo("m1", "m2", "1.1.1.1", "2.2.2.2"),
            pkt.make_arp_request("m1", "1.1.1.1", "2.2.2.2"),
            pkt.make_tcp("m1", "m2", "1.1.1.1", "2.2.2.2", 1, 2, vlan=9),
        ]
        for frame in frames:
            match = Match.from_frame(frame, in_port=1)
            key = match.exact_index_key()
            assert key is not None, frame
            assert key == frame_index_key(frame, 1)

    def test_partial_wildcards_are_not_indexable(self, tcp_frame):
        assert Match().exact_index_key() is None
        assert Match(tp_dst=80).exact_index_key() is None
        exact = Match.from_frame(tcp_frame, in_port=1)
        for field in ("in_port", "dl_src", "dl_dst", "dl_type",
                      "nw_src", "nw_dst", "nw_proto", "tp_src", "tp_dst"):
            widened = dataclasses.replace(exact, **{field: None})
            assert widened.exact_index_key() is None, field

    def test_vlan_wildcard_shares_bucket_with_tagged(self, tcp_frame):
        """VLAN is deliberately left out of the key, so tagged and
        untagged exact matches collide -- ``matches`` re-verifies."""
        tagged = pkt.make_tcp("m1", "m2", "1.1.1.1", "2.2.2.2", 1000, 80,
                              vlan=7)
        untagged_match = Match.from_frame(tcp_frame, in_port=1)
        tagged_match = Match.from_frame(tagged, in_port=1)
        assert untagged_match.exact_index_key() == \
            tagged_match.exact_index_key()
        assert not tagged_match.matches(tcp_frame, 1)

    def test_frame_key_ignores_ports_on_non_tcp_udp(self):
        """tp fields are only meaningful for TCP/UDP; an ICMP frame's
        key pins them to None, matching ``extract_nine_tuple``."""
        echo = pkt.make_icmp_echo("m1", "m2", "1.1.1.1", "2.2.2.2")
        key = frame_index_key(echo, 2)
        assert key[-2:] == (None, None)
        assert key == Match.from_frame(echo, in_port=2).exact_index_key()


class TestSubset:
    def test_everything_is_subset_of_any(self, tcp_frame):
        exact = Match.from_frame(tcp_frame, in_port=1)
        assert exact.is_subset_of(Match())

    def test_any_not_subset_of_exact(self, tcp_frame):
        exact = Match.from_frame(tcp_frame, in_port=1)
        assert not Match().is_subset_of(exact)

    def test_subset_requires_field_equality(self):
        narrow = Match(dl_type=pkt.ETH_TYPE_IP, tp_dst=80)
        wide = Match(dl_type=pkt.ETH_TYPE_IP)
        assert narrow.is_subset_of(wide)
        assert not wide.is_subset_of(narrow)
        sibling = Match(dl_type=pkt.ETH_TYPE_IP, tp_dst=81)
        assert not narrow.is_subset_of(sibling)

    def test_subset_is_reflexive(self, tcp_frame):
        exact = Match.from_frame(tcp_frame, in_port=1)
        assert exact.is_subset_of(exact)

    def test_str_shows_only_set_fields(self):
        assert str(Match()) == "Match(any)"
        assert "tp_dst=80" in str(Match(tp_dst=80))
