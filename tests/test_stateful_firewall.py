"""Tests for the stateful distributed firewall: the reply-direction
ACL fix on the stateless element (asymmetric ACL regression), the
conntrack-backed fast path on StatefulFirewallElement, and the chaos
acceptance shape -- session failover onto a replica that already holds
the connection entries, with zero mid-session ACL re-evaluations,
under a lossy+duplicating control channel.
"""

from repro.core.deployment import build_livesec_network
from repro.core.conntrack import ESTABLISHED, NEW, five_tuple_of
from repro.core.policy import (
    FailMode,
    FlowSelector,
    Policy,
    PolicyAction,
    PolicyTable,
)
from repro.elements import FirewallElement, StatefulFirewallElement
from repro.elements.firewall import AclRule
from repro.faults import FaultInjector, FaultPlan
from repro.faults.scenarios import GATEWAY_IP
from repro.net import packet as pkt
from repro.net.packet import extract_nine_tuple
from repro.workloads import CbrUdpFlow, attach_udp_echo


def udp_flow(src_ip, dst_ip, sport, dport):
    frame = pkt.make_udp(
        "00:00:00:00:00:01", "00:00:00:00:00:02",
        src_ip, dst_ip, sport, dport, payload=b"x",
    )
    return frame, extract_nine_tuple(frame)


class TestReplyDirectionRegression:
    """Satellite: an asymmetric (default-deny, forward-only) ACL must
    not drop the reply direction of a connection it admitted."""

    def acl_firewall(self, sim):
        return FirewallElement(
            sim, "fw", "00:aa:00:00:00:01", "10.9.0.1",
            acl=(AclRule(action="allow", src_ip_prefix="10.0.1.",
                         dst_ip_prefix="10.0.2."),),
            default_action="deny",
        )

    def test_reply_of_admitted_flow_not_denied(self, sim):
        fw = self.acl_firewall(sim)
        fwd_frame, fwd_flow = udp_flow("10.0.1.5", "10.0.2.7", 20000, 9000)
        assert fw.inspect(fwd_frame, fwd_flow) == []
        # The reply five-tuple matches no allow rule -- only the
        # admitted-connection memory can let it through.
        rev_frame, rev_flow = udp_flow("10.0.2.7", "10.0.1.5", 9000, 20000)
        assert fw.evaluate(rev_flow) == "deny"
        assert fw.inspect(rev_frame, rev_flow) == []
        assert fw.denies == 0

    def test_unrelated_flow_still_denied(self, sim):
        fw = self.acl_firewall(sim)
        frame, flow = udp_flow("10.0.3.1", "10.0.1.5", 9000, 20000)
        verdicts = fw.inspect(frame, flow)
        assert verdicts and verdicts[0].detail["verdict"] == "malicious"
        assert fw.denies == 1


class TestStatefulFastPath:
    def test_reply_promotes_and_skips_acl(self, sim):
        sfw = StatefulFirewallElement(
            sim, "sfw-1", "00:aa:00:00:00:02", "10.9.0.2",
        )
        fwd_frame, fwd_flow = udp_flow("10.0.1.5", "10.0.2.7", 20000, 9000)
        assert sfw.inspect(fwd_frame, fwd_flow) == []
        assert sfw.acl_evaluations == 1
        entry = sfw.conntrack.lookup(five_tuple_of(fwd_flow))
        assert entry is not None and entry.state == NEW
        rev_frame, rev_flow = udp_flow("10.0.2.7", "10.0.1.5", 9000, 20000)
        assert sfw.inspect(rev_frame, rev_flow) == []
        assert entry.state == ESTABLISHED
        # The reply and every later packet ride conntrack, not the ACL.
        assert sfw.acl_evaluations == 1
        assert sfw.conntrack_hits == 1
        assert sfw.inspect(fwd_frame, fwd_flow) == []
        assert sfw.conntrack_hits == 2

    def test_tcp_fin_closes_the_connection(self, sim):
        sfw = StatefulFirewallElement(
            sim, "sfw-1", "00:aa:00:00:00:02", "10.9.0.2",
        )
        syn = pkt.make_tcp(
            "00:00:00:00:00:01", "00:00:00:00:00:02",
            "10.0.1.5", "10.0.2.7", 20000, 80, flags="S",
        )
        sfw.inspect(syn, extract_nine_tuple(syn))
        fin = pkt.make_tcp(
            "00:00:00:00:00:02", "00:00:00:00:00:01",
            "10.0.2.7", "10.0.1.5", 80, 20000, flags="FA",
        )
        sfw.inspect(fin, extract_nine_tuple(fin))
        entry = sfw.conntrack.lookup(
            five_tuple_of(extract_nine_tuple(syn))
        )
        assert entry.state == "CLOSED"


def sfw_policy_table():
    table = PolicyTable()
    table.begin(source="test").add(Policy(
        name="sfw-chain",
        selector=FlowSelector(dst_ip=GATEWAY_IP),
        action=PolicyAction.CHAIN,
        service_chain=("sfw",),
        fail_mode=FailMode("open"),
    )).commit()
    return table


class TestStatefulFailoverUnderChaos:
    """The acceptance shape: crash a stateful firewall mid-session
    under a dropping+duplicating control channel; every session lands
    on a replica that already holds its ESTABLISHED entries, and no
    surviving firewall re-evaluates the ACL mid-session."""

    def test_failover_preserves_established_state(self):
        net = build_livesec_network(
            topology="linear",
            policies=sfw_policy_table(),
            elements=[("sfw", 3)],
            num_as=3,
            hosts_per_as=2,
            element_timeout_s=1.5,
            dispatcher="polling",
        )
        victim = net.elements[0]
        survivors = [e for e in net.elements if e is not victim]
        plan = (FaultPlan(seed=3)
                .element_crash(5.0, victim.name)
                .channel_chaos(2.5, "*", drop_rate=0.1,
                               duplicate_rate=0.1, until_s=11.0))
        injector = FaultInjector(net, plan)
        injector.arm()
        net.start()
        # Reply-direction traffic: the gateway echoes every datagram,
        # which is what promotes the tracked connections past NEW.
        attach_udp_echo(net.topology.gateway)
        hosts = [h for h in net.topology.hosts
                 if h is not net.topology.gateway]
        for host in hosts[:4]:
            CbrUdpFlow(net.sim, host, GATEWAY_IP,
                       rate_bps=2e6, duration_s=10.0).start()

        pre_crash = {}

        def snapshot_pre_crash():
            for element in net.elements:
                pre_crash[element.name] = {
                    "acl_evaluations": element.acl_evaluations,
                    "conntrack_hits": element.conntrack_hits,
                    "established": element.conntrack.states()[ESTABLISHED],
                    "updates_applied": element.updates_applied,
                }

        net.sim.schedule(4.95 - net.sim.now, snapshot_pre_crash)
        net.run(10.0)

        summary = injector.summary()
        assert summary["affected_sessions"] > 0
        assert (summary["recovered_sessions"]
                == summary["affected_sessions"])
        assert summary["unrecovered_sessions"] == 0

        # Before the crash: the victim's connections were promoted to
        # ESTABLISHED by the echo replies, and replication had already
        # handed copies to every peer.
        assert pre_crash[victim.name]["established"] > 0
        for element in survivors:
            assert pre_crash[element.name]["updates_applied"] > 0
            assert pre_crash[element.name]["established"] > 0

        # After failover: the survivors carried the victim's sessions
        # on the conntrack fast path -- zero ACL re-evaluations
        # anywhere, while conntrack hits kept climbing.
        for element in survivors:
            before = pre_crash[element.name]
            assert element.acl_evaluations == before["acl_evaluations"], (
                f"{element.name} re-evaluated its ACL mid-session"
            )
            assert element.conntrack_hits > before["conntrack_hits"]

    def test_replication_counters_surface_in_stats(self, sim):
        sfw = StatefulFirewallElement(
            sim, "sfw-1", "00:aa:00:00:00:03", "10.9.0.3",
        )
        data = sfw.stats()
        assert data["conntrack_entries"] == 0
        assert data["acl_evaluations"] == 0
        assert data["conntrack_hits"] == 0
        assert data["updates_applied"] == 0
        assert data["entries_resynced"] == 0


class TestRestartResync:
    """Satellite: a restarted replica pulls the fleet's ESTABLISHED
    table from a live peer before serving."""

    def _pair(self, sim):
        from repro.core.conntrack import ConnTrackReplicationGroup

        group = ConnTrackReplicationGroup(sim)
        a = StatefulFirewallElement(
            sim, "sfw-a", "00:aa:00:00:00:0a", "10.9.0.10",
        )
        b = StatefulFirewallElement(
            sim, "sfw-b", "00:aa:00:00:00:0b", "10.9.0.11",
        )
        a.join_replication_group(group)
        b.join_replication_group(group)
        return group, a, b

    def test_resync_copies_only_established(self, sim):
        group, a, b = self._pair(sim)
        # One ESTABLISHED connection (forward + reply) and one stuck at
        # NEW on the donor.
        fwd_frame, fwd_flow = udp_flow("10.0.1.5", "10.0.2.7", 20000, 9000)
        rev_frame, rev_flow = udp_flow("10.0.2.7", "10.0.1.5", 9000, 20000)
        a.inspect(fwd_frame, fwd_flow)
        a.inspect(rev_frame, rev_flow)
        new_frame, new_flow = udp_flow("10.0.1.6", "10.0.2.7", 20001, 9000)
        a.inspect(new_frame, new_flow)

        b.fail()
        b.conntrack = type(b.conntrack)()  # simulate total state loss
        b.restart()
        assert b.entries_resynced == 1
        entry = b.conntrack.lookup(five_tuple_of(fwd_flow))
        assert entry is not None and entry.state == ESTABLISHED
        assert b.conntrack.lookup(five_tuple_of(new_flow)) is None

    def test_resync_skips_dead_donors(self, sim):
        group, a, b = self._pair(sim)
        fwd_frame, fwd_flow = udp_flow("10.0.1.5", "10.0.2.7", 20000, 9000)
        rev_frame, rev_flow = udp_flow("10.0.2.7", "10.0.1.5", 9000, 20000)
        a.inspect(fwd_frame, fwd_flow)
        a.inspect(rev_frame, rev_flow)
        a.fail()
        b.fail()
        b.restart()
        # The only peer is dead: nothing to pull, serve from scratch.
        assert b.entries_resynced == 0
        assert len(b.conntrack) == 0

    def test_crash_restart_failover_back(self):
        """Regression for the full loop: sfw-1 crashes (sessions fail
        over to sfw-2), restarts and re-syncs, then sfw-2 crashes --
        the sessions land *back* on sfw-1, which must carry them on
        the conntrack fast path with zero ACL re-evaluations."""
        net = build_livesec_network(
            topology="linear",
            policies=sfw_policy_table(),
            elements=[("sfw", 2)],
            num_as=3,
            hosts_per_as=2,
            element_timeout_s=1.5,
            dispatcher="polling",
        )
        first, second = net.elements
        plan = (FaultPlan(seed=5)
                .element_crash(4.0, first.name, restart_at_s=6.0)
                .element_crash(8.5, second.name))
        injector = FaultInjector(net, plan)
        injector.arm()
        net.start()
        attach_udp_echo(net.topology.gateway)
        hosts = [h for h in net.topology.hosts
                 if h is not net.topology.gateway]
        for host in hosts[:4]:
            CbrUdpFlow(net.sim, host, GATEWAY_IP,
                       rate_bps=2e6, duration_s=12.0).start()

        post_restart = {}

        def snapshot_post_restart():
            post_restart.update({
                "acl_evaluations": first.acl_evaluations,
                "established": first.conntrack.states()[ESTABLISHED],
                "entries_resynced": first.entries_resynced,
            })

        net.sim.schedule_at(6.5, snapshot_post_restart)
        net.run(14.0)

        summary = injector.summary()
        assert summary["affected_sessions"] > 0
        assert summary["unrecovered_sessions"] == 0

        # The restart wiped the table, and the re-sync refilled it from
        # the live peer before any post-restart packet arrived.
        assert post_restart["entries_resynced"] > 0
        assert post_restart["established"] > 0
        # Failover-back rode the resynced entries: conntrack hits kept
        # climbing on sfw-1 with not one ACL re-evaluation after the
        # restart.
        assert first.acl_evaluations == post_restart["acl_evaluations"], (
            "restarted replica re-evaluated its ACL mid-session"
        )
        assert first.conntrack.states()[ESTABLISHED] > 0
