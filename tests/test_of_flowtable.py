"""Unit tests for flow tables: priorities, timeouts, OF semantics."""

import pytest

from repro.net import packet as pkt
from repro.openflow.actions import Output
from repro.openflow.flowtable import FlowEntry, FlowTable
from repro.openflow.match import Match


def frame():
    return pkt.make_tcp("m1", "m2", "1.1.1.1", "2.2.2.2", 1000, 80)


def entry(match=None, priority=100, actions=(Output(1),), **kwargs):
    return FlowEntry(match=match or Match(), priority=priority,
                     actions=tuple(actions), **kwargs)


class TestLookup:
    def test_miss_on_empty_table(self):
        table = FlowTable()
        assert table.lookup(frame(), 1, now=0.0) is None
        assert table.lookups == 1 and table.matched == 0

    def test_highest_priority_wins(self):
        table = FlowTable()
        table.add(entry(priority=10, actions=(Output(1),)), now=0.0)
        table.add(entry(priority=200, actions=(Output(2),)), now=0.0)
        table.add(entry(priority=50, actions=(Output(3),)), now=0.0)
        hit = table.lookup(frame(), 1, now=1.0)
        assert hit.actions == (Output(2),)

    def test_specific_beats_general_only_by_priority(self):
        table = FlowTable()
        specific = Match(tp_dst=80)
        table.add(entry(match=specific, priority=200, actions=(Output(9),)),
                  now=0.0)
        table.add(entry(priority=100, actions=(Output(1),)), now=0.0)
        assert table.lookup(frame(), 1, now=0.0).actions == (Output(9),)
        other = pkt.make_tcp("m1", "m2", "1.1.1.1", "2.2.2.2", 1, 443)
        assert table.lookup(other, 1, now=0.0).actions == (Output(1),)

    def test_counters_updated_on_hit(self):
        table = FlowTable()
        table.add(entry(), now=0.0)
        hit = table.lookup(frame(), 1, now=2.5)
        assert hit.packets == 1
        assert hit.bytes == frame().size
        assert hit.last_used_at == 2.5

    def test_non_matching_entry_skipped(self):
        table = FlowTable()
        table.add(entry(match=Match(tp_dst=443)), now=0.0)
        assert table.lookup(frame(), 1, now=0.0) is None


class TestAddSemantics:
    def test_identical_match_priority_replaces(self):
        table = FlowTable()
        table.add(entry(actions=(Output(1),)), now=0.0)
        table.add(entry(actions=(Output(2),)), now=1.0)
        assert len(table) == 1
        assert table.lookup(frame(), 1, now=1.0).actions == (Output(2),)

    def test_same_match_different_priority_coexist(self):
        table = FlowTable()
        table.add(entry(priority=100), now=0.0)
        table.add(entry(priority=200), now=0.0)
        assert len(table) == 2


class TestTimeouts:
    def test_idle_timeout_expiry(self):
        table = FlowTable()
        table.add(entry(idle_timeout=2.0), now=0.0)
        assert table.lookup(frame(), 1, now=1.0) is not None
        # Unused since t=1: expired at t=3.5.
        assert table.lookup(frame(), 1, now=3.5) is None

    def test_idle_timeout_refreshed_by_traffic(self):
        table = FlowTable()
        table.add(entry(idle_timeout=2.0), now=0.0)
        for t in (1.0, 2.5, 4.0):
            assert table.lookup(frame(), 1, now=t) is not None

    def test_hard_timeout_not_refreshed(self):
        table = FlowTable()
        table.add(entry(hard_timeout=3.0), now=0.0)
        assert table.lookup(frame(), 1, now=2.9) is not None
        assert table.lookup(frame(), 1, now=3.1) is None

    def test_zero_timeouts_never_expire(self):
        table = FlowTable()
        table.add(entry(), now=0.0)
        assert table.lookup(frame(), 1, now=1e9) is not None

    def test_expire_returns_reason(self):
        table = FlowTable()
        table.add(entry(idle_timeout=1.0), now=0.0)
        table.add(entry(match=Match(tp_dst=80), hard_timeout=2.0), now=0.0)
        removed = table.expire(now=5.0)
        reasons = sorted(r.reason for r in removed)
        assert reasons == ["hard", "idle"]
        assert len(table) == 0


class TestDelete:
    def test_strict_delete_requires_exact_match(self):
        table = FlowTable()
        table.add(entry(match=Match(tp_dst=80)), now=0.0)
        assert table.delete(Match(), strict=True, priority=100) == []
        removed = table.delete(Match(tp_dst=80), strict=True, priority=100)
        assert len(removed) == 1 and len(table) == 0

    def test_strict_delete_without_priority_rejected(self):
        """OF 1.0 strict delete requires priority equality; a strict
        delete spanning all priorities is a caller bug, not a wildcard."""
        table = FlowTable()
        table.add(entry(match=Match(tp_dst=80), priority=100), now=0.0)
        table.add(entry(match=Match(tp_dst=80), priority=200), now=0.0)
        with pytest.raises(ValueError):
            table.delete(Match(tp_dst=80), strict=True)
        assert len(table) == 2  # nothing was deleted

    def test_strict_delete_removes_single_priority(self):
        table = FlowTable()
        table.add(entry(match=Match(tp_dst=80), priority=100), now=0.0)
        table.add(entry(match=Match(tp_dst=80), priority=200), now=0.0)
        removed = table.delete(Match(tp_dst=80), strict=True, priority=200)
        assert [e.priority for e in removed] == [200]
        assert len(table) == 1 and next(iter(table)).priority == 100

    def test_strict_delete_wrong_priority_keeps_entry(self):
        table = FlowTable()
        table.add(entry(match=Match(tp_dst=80), priority=100), now=0.0)
        assert table.delete(Match(tp_dst=80), strict=True, priority=50) == []
        assert len(table) == 1

    def test_nonstrict_delete_covers_subsets(self):
        table = FlowTable()
        table.add(entry(match=Match(tp_dst=80)), now=0.0)
        table.add(entry(match=Match(tp_dst=80, nw_proto=6), priority=50),
                  now=0.0)
        table.add(entry(match=Match(tp_dst=443), priority=60), now=0.0)
        removed = table.delete(Match(tp_dst=80))
        assert len(removed) == 2
        assert len(table) == 1

    def test_nonstrict_delete_all_with_any(self):
        table = FlowTable()
        for port in (80, 443):
            table.add(entry(match=Match(tp_dst=port)), now=0.0)
        assert len(table.delete(Match())) == 2


class TestModify:
    def test_modify_updates_actions_preserves_counters(self):
        table = FlowTable()
        table.add(entry(actions=(Output(1),)), now=0.0)
        table.lookup(frame(), 1, now=1.0)
        count = table.modify(Match(), (Output(5),), now=2.0)
        assert count == 1
        hit = table.lookup(frame(), 1, now=3.0)
        assert hit.actions == (Output(5),)
        assert hit.packets == 2  # counter survived the modify

    def test_modify_to_drop(self):
        table = FlowTable()
        table.add(entry(), now=0.0)
        table.modify(Match(), (), now=1.0)
        assert table.lookup(frame(), 1, now=2.0).is_drop

    def test_modify_covers_narrower_entries_only(self):
        """OF 1.0 MODIFY mirrors non-strict delete: it touches entries
        *covered by* the given match, never broader ones."""
        table = FlowTable()
        table.add(entry(match=Match(tp_dst=80, nw_proto=6),
                        actions=(Output(1),)), now=0.0)
        # The broader match covers the installed entry: modified.
        assert table.modify(Match(tp_dst=80), (Output(5),), now=1.0) == 1
        # A *narrower* match does not cover it: the old bidirectional
        # check would have rewritten the entry anyway.
        assert table.modify(
            Match(tp_dst=80, nw_proto=6, tp_src=9), (Output(7),), now=2.0
        ) == 0
        assert table.lookup(frame(), 1, now=3.0).actions == (Output(5),)

    def test_modify_does_not_rewrite_disjoint_entry(self):
        table = FlowTable()
        table.add(entry(match=Match(tp_dst=443)), now=0.0)
        assert table.modify(Match(tp_dst=80), (Output(5),), now=1.0) == 0


class TestEvictOnObservation:
    def test_lookup_evicts_expired_entries(self):
        """An entry observed expired leaves the table immediately; the
        table's length always matches what the datapath honors."""
        table = FlowTable()
        table.add(entry(idle_timeout=1.0), now=0.0)
        assert table.lookup(frame(), 1, now=5.0) is None
        assert len(table) == 0
        removed = table.take_removed()
        assert len(removed) == 1 and removed[0].reason == "idle"
        # Drained once: a second take is empty.
        assert table.take_removed() == ()

    def test_lookup_evicts_even_on_unrelated_frame(self):
        table = FlowTable()
        table.add(entry(match=Match(tp_dst=80), hard_timeout=2.0), now=0.0)
        other = pkt.make_tcp("m9", "m8", "9.9.9.9", "8.8.8.8", 7, 443)
        table.lookup(other, 1, now=10.0)
        assert len(table) == 0
        assert table.take_removed()[0].reason == "hard"

    def test_idle_refresh_defers_heap_deadline(self):
        table = FlowTable()
        table.add(entry(idle_timeout=2.0), now=0.0)
        for t in (1.0, 2.5, 4.0):  # each hit refreshes the idle clock
            assert table.lookup(frame(), 1, now=t) is not None
        assert table.lookup(frame(), 1, now=7.0) is None
        assert table.take_removed()[0].reason == "idle"


class TestExactIndex:
    def test_exact_rule_hits_via_index(self):
        table = FlowTable()
        exact = Match.from_frame(frame(), in_port=1)
        table.add(entry(match=exact, actions=(Output(4),)), now=0.0)
        hit = table.lookup(frame(), 1, now=1.0)
        assert hit is not None and hit.actions == (Output(4),)
        assert table.exact_hits == 1 and table.wildcard_hits == 0
        assert table.wildcard_entries() == ()

    def test_wildcard_rule_hits_via_list(self):
        table = FlowTable()
        table.add(entry(match=Match(tp_dst=80)), now=0.0)
        assert table.lookup(frame(), 1, now=1.0) is not None
        assert table.wildcard_hits == 1 and table.exact_hits == 0
        assert len(table.wildcard_entries()) == 1

    def test_higher_priority_wildcard_beats_exact(self):
        """A drop rule above an exact forward rule must win (the
        paper's attack blocking depends on it)."""
        table = FlowTable()
        exact = Match.from_frame(frame(), in_port=1)
        table.add(entry(match=exact, priority=100, actions=(Output(4),)),
                  now=0.0)
        table.add(entry(match=Match(in_port=1, dl_src="m1"), priority=210,
                        actions=()), now=0.0)
        assert table.lookup(frame(), 1, now=1.0).is_drop

    def test_lower_priority_wildcard_loses_to_exact(self):
        table = FlowTable()
        exact = Match.from_frame(frame(), in_port=1)
        table.add(entry(match=exact, priority=200, actions=(Output(4),)),
                  now=0.0)
        table.add(entry(match=Match(), priority=50, actions=()), now=0.0)
        assert table.lookup(frame(), 1, now=1.0).actions == (Output(4),)

    def test_replacement_updates_index(self):
        table = FlowTable()
        exact = Match.from_frame(frame(), in_port=1)
        table.add(entry(match=exact, actions=(Output(1),)), now=0.0)
        table.add(entry(match=exact, actions=(Output(2),)), now=1.0)
        assert len(table) == 1
        assert table.lookup(frame(), 1, now=2.0).actions == (Output(2),)

    def test_vlan_checked_despite_shared_bucket(self):
        """The index key omits the VLAN tag; bucket verification must
        still separate tagged and untagged entries."""
        tagged = pkt.make_tcp("m1", "m2", "1.1.1.1", "2.2.2.2", 1000, 80,
                              vlan=7)
        table = FlowTable()
        table.add(entry(match=Match.from_frame(tagged, in_port=1),
                        actions=(Output(9),)), now=0.0)
        assert table.lookup(frame(), 1, now=1.0) is None  # untagged probe
        assert table.lookup(tagged, 1, now=1.0).actions == (Output(9),)
