"""Unit tests for flow tables: priorities, timeouts, OF semantics."""


from repro.net import packet as pkt
from repro.openflow.actions import Output
from repro.openflow.flowtable import FlowEntry, FlowTable
from repro.openflow.match import Match


def frame():
    return pkt.make_tcp("m1", "m2", "1.1.1.1", "2.2.2.2", 1000, 80)


def entry(match=None, priority=100, actions=(Output(1),), **kwargs):
    return FlowEntry(match=match or Match(), priority=priority,
                     actions=tuple(actions), **kwargs)


class TestLookup:
    def test_miss_on_empty_table(self):
        table = FlowTable()
        assert table.lookup(frame(), 1, now=0.0) is None
        assert table.lookups == 1 and table.matched == 0

    def test_highest_priority_wins(self):
        table = FlowTable()
        table.add(entry(priority=10, actions=(Output(1),)), now=0.0)
        table.add(entry(priority=200, actions=(Output(2),)), now=0.0)
        table.add(entry(priority=50, actions=(Output(3),)), now=0.0)
        hit = table.lookup(frame(), 1, now=1.0)
        assert hit.actions == (Output(2),)

    def test_specific_beats_general_only_by_priority(self):
        table = FlowTable()
        specific = Match(tp_dst=80)
        table.add(entry(match=specific, priority=200, actions=(Output(9),)),
                  now=0.0)
        table.add(entry(priority=100, actions=(Output(1),)), now=0.0)
        assert table.lookup(frame(), 1, now=0.0).actions == (Output(9),)
        other = pkt.make_tcp("m1", "m2", "1.1.1.1", "2.2.2.2", 1, 443)
        assert table.lookup(other, 1, now=0.0).actions == (Output(1),)

    def test_counters_updated_on_hit(self):
        table = FlowTable()
        table.add(entry(), now=0.0)
        hit = table.lookup(frame(), 1, now=2.5)
        assert hit.packets == 1
        assert hit.bytes == frame().size
        assert hit.last_used_at == 2.5

    def test_non_matching_entry_skipped(self):
        table = FlowTable()
        table.add(entry(match=Match(tp_dst=443)), now=0.0)
        assert table.lookup(frame(), 1, now=0.0) is None


class TestAddSemantics:
    def test_identical_match_priority_replaces(self):
        table = FlowTable()
        table.add(entry(actions=(Output(1),)), now=0.0)
        table.add(entry(actions=(Output(2),)), now=1.0)
        assert len(table) == 1
        assert table.lookup(frame(), 1, now=1.0).actions == (Output(2),)

    def test_same_match_different_priority_coexist(self):
        table = FlowTable()
        table.add(entry(priority=100), now=0.0)
        table.add(entry(priority=200), now=0.0)
        assert len(table) == 2


class TestTimeouts:
    def test_idle_timeout_expiry(self):
        table = FlowTable()
        table.add(entry(idle_timeout=2.0), now=0.0)
        assert table.lookup(frame(), 1, now=1.0) is not None
        # Unused since t=1: expired at t=3.5.
        assert table.lookup(frame(), 1, now=3.5) is None

    def test_idle_timeout_refreshed_by_traffic(self):
        table = FlowTable()
        table.add(entry(idle_timeout=2.0), now=0.0)
        for t in (1.0, 2.5, 4.0):
            assert table.lookup(frame(), 1, now=t) is not None

    def test_hard_timeout_not_refreshed(self):
        table = FlowTable()
        table.add(entry(hard_timeout=3.0), now=0.0)
        assert table.lookup(frame(), 1, now=2.9) is not None
        assert table.lookup(frame(), 1, now=3.1) is None

    def test_zero_timeouts_never_expire(self):
        table = FlowTable()
        table.add(entry(), now=0.0)
        assert table.lookup(frame(), 1, now=1e9) is not None

    def test_expire_returns_reason(self):
        table = FlowTable()
        table.add(entry(idle_timeout=1.0), now=0.0)
        table.add(entry(match=Match(tp_dst=80), hard_timeout=2.0), now=0.0)
        removed = table.expire(now=5.0)
        reasons = sorted(r.reason for r in removed)
        assert reasons == ["hard", "idle"]
        assert len(table) == 0


class TestDelete:
    def test_strict_delete_requires_exact_match(self):
        table = FlowTable()
        table.add(entry(match=Match(tp_dst=80)), now=0.0)
        assert table.delete(Match(), strict=True) == []
        removed = table.delete(Match(tp_dst=80), strict=True, priority=100)
        assert len(removed) == 1 and len(table) == 0

    def test_strict_delete_wrong_priority_keeps_entry(self):
        table = FlowTable()
        table.add(entry(match=Match(tp_dst=80), priority=100), now=0.0)
        assert table.delete(Match(tp_dst=80), strict=True, priority=50) == []
        assert len(table) == 1

    def test_nonstrict_delete_covers_subsets(self):
        table = FlowTable()
        table.add(entry(match=Match(tp_dst=80)), now=0.0)
        table.add(entry(match=Match(tp_dst=80, nw_proto=6), priority=50),
                  now=0.0)
        table.add(entry(match=Match(tp_dst=443), priority=60), now=0.0)
        removed = table.delete(Match(tp_dst=80))
        assert len(removed) == 2
        assert len(table) == 1

    def test_nonstrict_delete_all_with_any(self):
        table = FlowTable()
        for port in (80, 443):
            table.add(entry(match=Match(tp_dst=port)), now=0.0)
        assert len(table.delete(Match())) == 2


class TestModify:
    def test_modify_updates_actions_preserves_counters(self):
        table = FlowTable()
        table.add(entry(actions=(Output(1),)), now=0.0)
        table.lookup(frame(), 1, now=1.0)
        count = table.modify(Match(), (Output(5),), now=2.0)
        assert count == 1
        hit = table.lookup(frame(), 1, now=3.0)
        assert hit.actions == (Output(5),)
        assert hit.packets == 2  # counter survived the modify

    def test_modify_to_drop(self):
        table = FlowTable()
        table.add(entry(), now=0.0)
        table.modify(Match(), (), now=1.0)
        assert table.lookup(frame(), 1, now=2.0).is_drop
