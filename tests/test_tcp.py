"""Tests for the reliable transport."""

import pytest

from repro.net.host import Host
from repro.net.node import connect
from repro.net.tcp import MSS, TcpConnection, TcpListener


@pytest.fixture
def wire(sim):
    """Client and server hosts, directly wired, with an echo-less
    listener collecting received bytes."""
    client = Host(sim, "client", "00:00:00:00:00:01", "10.0.0.1")
    server = Host(sim, "server", "00:00:00:00:00:02", "10.0.0.2")
    connect(sim, client, server, bandwidth_bps=100e6, delay_s=1e-3)
    received = []
    listener = TcpListener(
        server, 80, on_receive=lambda conn, data: received.append(data)
    )
    return client, server, listener, received


class TestHandshake:
    def test_three_way_establishes_both_sides(self, sim, wire):
        client, server, listener, received = wire
        conn = TcpConnection.connect(client, server.ip, 80)
        sim.run(until=1.0)
        assert conn.state == TcpConnection.ESTABLISHED
        server_conn = next(iter(listener.connections.values()))
        assert server_conn.state == TcpConnection.ESTABLISHED

    def test_established_callback(self, sim, wire):
        client, server, listener, received = wire
        seen = []
        TcpConnection.connect(client, server.ip, 80,
                              on_established=seen.append)
        sim.run(until=1.0)
        assert len(seen) == 1

    def test_syn_retransmitted_when_lost(self, sim, wire):
        client, server, listener, received = wire
        link = client.port(1).link
        link.set_up(False)
        conn = TcpConnection.connect(client, server.ip, 80)
        sim.schedule(0.3, link.set_up, True)
        sim.run(until=3.0)
        assert conn.state == TcpConnection.ESTABLISHED
        assert conn.retransmissions >= 1


class TestDataTransfer:
    def test_small_payload_arrives_intact(self, sim, wire):
        client, server, listener, received = wire
        conn = TcpConnection.connect(
            client, server.ip, 80,
            on_established=lambda c: c.send(b"GET / HTTP/1.1\r\n\r\n"),
        )
        sim.run(until=1.0)
        assert b"".join(received) == b"GET / HTTP/1.1\r\n\r\n"
        assert conn.bytes_acked == len(b"GET / HTTP/1.1\r\n\r\n")

    def test_bulk_transfer_across_many_segments(self, sim, wire):
        client, server, listener, received = wire
        blob = bytes(range(256)) * 200  # 51200 B ~ 37 segments
        conn = TcpConnection.connect(
            client, server.ip, 80,
            on_established=lambda c: c.send(blob),
        )
        sim.run(until=5.0)
        assert b"".join(received) == blob
        assert conn.bytes_acked == len(blob)

    def test_cwnd_grows_during_transfer(self, sim, wire):
        client, server, listener, received = wire
        conn = TcpConnection.connect(
            client, server.ip, 80,
            on_established=lambda c: c.send(b"z" * (40 * MSS)),
        )
        sim.run(until=5.0)
        assert conn.cwnd > 2 * MSS

    def test_server_can_reply(self, sim, wire):
        client, server, listener, received = wire
        listener.on_receive = lambda conn, data: conn.send(b"HTTP/1.1 200 OK")
        got = []
        TcpConnection.connect(
            client, server.ip, 80,
            on_receive=got.append,
            on_established=lambda c: c.send(b"GET /"),
        )
        sim.run(until=2.0)
        assert b"".join(got) == b"HTTP/1.1 200 OK"

    def test_two_concurrent_connections(self, sim, wire):
        client, server, listener, received = wire
        TcpConnection.connect(client, server.ip, 80,
                              on_established=lambda c: c.send(b"one"))
        TcpConnection.connect(client, server.ip, 80,
                              on_established=lambda c: c.send(b"two"))
        sim.run(until=2.0)
        assert sorted(received) == [b"one", b"two"]
        assert len(listener.connections) == 2


class TestLossRecovery:
    def test_data_survives_loss_burst(self, sim, wire):
        client, server, listener, received = wire
        blob = b"payload-" * 125000  # 1 MB: outlasts the cut below
        conn = TcpConnection.connect(
            client, server.ip, 80,
            on_established=lambda c: c.send(blob),
        )
        link = client.port(1).link
        # Cut the wire mid-transfer, then heal it.
        sim.schedule(0.01, link.set_up, False)
        sim.schedule(0.40, link.set_up, True)
        sim.run(until=30.0)
        assert b"".join(received) == blob
        assert conn.retransmissions >= 1

    def test_loss_shrinks_cwnd(self, sim, wire):
        client, server, listener, received = wire
        conn = TcpConnection.connect(
            client, server.ip, 80,
            on_established=lambda c: c.send(b"y" * (3000 * MSS)),
        )
        sim.run(until=0.05)
        grown = conn.cwnd
        assert conn.unacked_bytes > 0, "transfer must still be in flight"
        link = client.port(1).link
        link.set_up(False)
        sim.run(until=1.0)
        link.set_up(True)
        sim.run(until=1.1)
        assert conn.cwnd < grown

    def test_queue_overflow_recovered(self, sim):
        """A tight bottleneck queue forces real drops; the transfer
        must still complete exactly."""
        client = Host(sim, "c", "00:00:00:00:00:01", "10.0.0.1")
        server = Host(sim, "s", "00:00:00:00:00:02", "10.0.0.2")
        connect(sim, client, server, bandwidth_bps=2e6, delay_s=2e-3,
                queue_packets=4)
        received = []
        TcpListener(server, 80,
                    on_receive=lambda conn, data: received.append(data))
        blob = b"x" * (60 * MSS)
        conn = TcpConnection.connect(
            client, server.ip, 80,
            on_established=lambda c: c.send(blob),
        )
        sim.run(until=60.0)
        assert b"".join(received) == blob
        assert conn.retransmissions > 0


class TestTeardown:
    def test_close_after_data(self, sim, wire):
        client, server, listener, received = wire
        closed = []
        conn = TcpConnection.connect(
            client, server.ip, 80,
            on_established=lambda c: (c.send(b"bye"), c.close()),
            on_close=closed.append,
        )
        sim.run(until=2.0)
        assert conn.state == TcpConnection.CLOSED
        assert closed == [conn]
        assert b"".join(received) == b"bye"

    def test_send_after_close_rejected(self, sim, wire):
        client, server, listener, received = wire
        conn = TcpConnection.connect(client, server.ip, 80)
        sim.run(until=1.0)
        conn.close()
        sim.run(until=2.0)
        with pytest.raises(RuntimeError):
            conn.send(b"late")


class TestOverLiveSec:
    def test_tcp_through_steered_path(self, steering_net):
        """A real TCP connection through the IDS steering chain."""
        client = steering_net.host("h1_1")
        gateway = steering_net.gateway
        received = []
        TcpListener(gateway, 8080,
                    on_receive=lambda conn, data: received.append(data))
        blob = b"web-object-" * 2000
        conn = TcpConnection.connect(
            client, gateway.ip, 8080,
            on_established=lambda c: c.send(blob),
        )
        steering_net.run(10.0)
        assert b"".join(received) == blob
        processed = sum(e.processed_packets for e in steering_net.elements)
        assert processed > 0, "the connection must have traversed the IDS"
