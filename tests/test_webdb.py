"""Tests for the JSON web-database gateway."""

import json

import pytest

from repro.core.events import EventKind, EventLog
from repro.core.visualization import MonitoringComponent
from repro.core.webdb import WebDatabase
from repro.workloads import HttpFlow

GATEWAY_IP = "10.255.255.254"


@pytest.fixture
def webdb():
    log = EventLog()
    monitoring = MonitoringComponent(log)
    log.emit(1.0, EventKind.SWITCH_JOIN, dpid=1, name="sw1")
    log.emit(1.0, EventKind.SWITCH_JOIN, dpid=2, name="sw2")
    log.emit(1.5, EventKind.LINK_UP, src_dpid=1, dst_dpid=2)
    log.emit(1.5, EventKind.LINK_UP, src_dpid=2, dst_dpid=1)
    log.emit(2.0, EventKind.HOST_JOIN, mac="m1", ip="10.0.0.1", dpid=1)
    log.emit(3.0, EventKind.ELEMENT_ONLINE, mac="e1", service_type="ids",
             dpid=2)
    log.emit(4.0, EventKind.PROTOCOL_IDENTIFIED, user_mac="m1",
             application="http")
    return log, WebDatabase(monitoring)


class TestSerialization:
    def test_live_view_shape(self, webdb):
        log, db = webdb
        view = db.live_view()
        assert view["switches"] == [1, 2]
        assert view["full_mesh"] is True
        assert view["users"][0]["mac"] == "m1"
        assert view["users"][0]["applications"] == ["http"]
        assert view["elements"][0]["service_type"] == "ids"

    def test_view_is_json_serializable(self, webdb):
        log, db = webdb
        text = json.dumps(db.live_view())
        assert "m1" in text

    def test_events_rows(self, webdb):
        log, db = webdb
        rows = db.events()
        assert len(rows) == 7
        assert rows[0] == {"time": 1.0, "kind": EventKind.SWITCH_JOIN,
                           "data": {"dpid": 1, "name": "sw1"}}

    def test_events_since_filter(self, webdb):
        log, db = webdb
        assert len(db.events(since=2.0)) == 3

    def test_replay_view(self, webdb):
        log, db = webdb
        log.emit(9.0, EventKind.HOST_LEAVE, mac="m1")
        past = db.replay_view(until=5.0)
        assert past["users"][0]["online"] is True
        now = db.live_view()
        assert now["users"][0]["online"] is False


class TestDumpLoad:
    def test_roundtrip_through_file(self, webdb, tmp_path):
        log, db = webdb
        path = str(tmp_path / "livesec-db.json")
        rows = db.dump(path)
        assert rows == 7
        loaded = WebDatabase.load(path)
        assert loaded["live"]["switches"] == [1, 2]
        assert len(loaded["events"]) == 7

    def test_dump_from_running_network(self, steering_net, tmp_path):
        HttpFlow(steering_net.sim, steering_net.host("h1_1"), GATEWAY_IP,
                 rate_bps=2e6, duration_s=1.0).start()
        steering_net.run(2.0)
        db = WebDatabase(steering_net.monitoring)
        path = str(tmp_path / "campus.json")
        rows = db.dump(path)
        assert rows > 10
        loaded = WebDatabase.load(path)
        assert loaded["live"]["full_mesh"]
        assert len(loaded["live"]["elements"]) == 2
