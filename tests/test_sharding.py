"""Tests for the shard fabric: the deterministic partition map, the
sharded composition root, cross-shard steering over the typed rule
channel, session handoff on host roam, shard-crash re-homing, and the
combined determinism digest.
"""

import pytest

from repro.core.deployment import build_sharded_network
from repro.core.sharding import ShardMap, combined_digest
from repro.faults import FaultInjector, FaultPlan
from repro.faults.scenarios import GATEWAY_IP
from repro.workloads import CbrUdpFlow


def ids_policies():
    """Per-shard policy factory: chain gateway-bound traffic via ids."""
    from repro.core.policy import (
        FailMode,
        FlowSelector,
        Policy,
        PolicyAction,
        PolicyTable,
    )

    table = PolicyTable()
    table.begin(source="test").add(Policy(
        name="ids-chain",
        selector=FlowSelector(dst_ip=GATEWAY_IP),
        action=PolicyAction.CHAIN,
        service_chain=("ids",),
        fail_mode=FailMode("open"),
    )).commit()
    return table


def two_shard_net(**kwargs):
    """2 shards over a 4-switch linear fabric: shard 0 owns dpids
    {1, 2}, shard 1 owns {3, 4} (and the gateway, on ovs4)."""
    defaults = dict(
        num_shards=2,
        topology="linear",
        policies=ids_policies,
        elements=[("ids", 2)],
        num_as=4,
        hosts_per_as=1,
        dispatcher="polling",
    )
    defaults.update(kwargs)
    return build_sharded_network(**defaults)


class TestShardMap:
    def test_contiguous_is_balanced(self):
        shard_map = ShardMap.contiguous(range(1, 11), 4)
        sizes = [len(shard_map.owned_by(s)) for s in range(4)]
        assert sizes == [3, 3, 2, 2]
        assert shard_map.owned_by(0) == [1, 2, 3]
        assert shard_map.owner(10) == 3
        assert shard_map.dpids() == list(range(1, 11))

    def test_contiguous_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            ShardMap.contiguous([1, 2], 3)
        with pytest.raises(ValueError):
            ShardMap.contiguous([1, 2], 0)

    def test_per_pod_partition(self):
        shard_map = ShardMap.per_pod(4)
        assert shard_map.num_shards == 4
        for pod in range(4):
            assert shard_map.owned_by(pod) == [2 * pod + 1, 2 * pod + 2]
        with pytest.raises(ValueError):
            ShardMap.per_pod(3)

    def test_rehome_round_robins_over_survivors(self):
        shard_map = ShardMap.per_pod(4)
        moves = shard_map.rehome(1, [3, 0, 2])
        # dpid order, survivors sorted: 3 -> 0, 4 -> 2.
        assert moves == [(3, 0), (4, 2)]
        assert shard_map.owned_by(1) == []
        assert shard_map.owner(3) == 0
        assert shard_map.owner(4) == 2
        with pytest.raises(ValueError):
            shard_map.rehome(0, [])


class TestShardedDeployment:
    def test_partition_and_status(self):
        net = two_shard_net()
        net.start()
        net.run(1.5)
        assert net.member_of(1).shard_id == 0
        assert net.member_of(4).shard_id == 1
        status = net.status()
        assert status["num_shards"] == 2
        assert status["down"] == []
        by_shard = {row["shard"]: row for row in status["shards"]}
        assert by_shard[0]["dpids"] == [1, 2]
        assert by_shard[1]["dpids"] == [3, 4]
        for row in status["shards"]:
            assert row["live"]
            assert row["nib_digest"]
        # The hello exchange ran for both shards.
        counters = net.metrics.snapshot().counters()
        assert counters["sharding.hellos"] >= 4

    def test_cross_shard_session_uses_remote_rules(self):
        net = two_shard_net()
        net.start()
        # h1_1 sits on dpid 1 (shard 0); the gateway on dpid 4
        # (shard 1): the session's far-side rules must travel the
        # typed inter-shard channel, not a shared flow table.
        src = net.topology.host_by_name("h1_1")
        CbrUdpFlow(net.sim, src, GATEWAY_IP, rate_bps=1e6,
                   duration_s=1.0).start()
        net.run(2.0)
        owner = net.member_of(1)
        sessions = owner.controller.sessions.sessions_of_user(src.mac)
        assert sessions and not any(s.blocked for s in sessions)
        counters = net.metrics.snapshot().counters()
        assert counters["sharding.remote_rule_ops"] > 0
        assert counters.get("sharding.remote_rule_drops", 0) == 0

    def test_federated_directory_spans_shards(self):
        # All ids elements on shard 0's switches: shard 1 must still
        # be able to steer through them via the federation.
        net = build_sharded_network(
            num_shards=2, topology="linear", policies=ids_policies,
            elements=[], num_as=4, hosts_per_as=1, dispatcher="polling",
        )
        net.add_element("ids", net.topology.as_switches[0])
        net.start()
        src = net.topology.host_by_name("h3_1")  # dpid 3, shard 1
        CbrUdpFlow(net.sim, src, GATEWAY_IP, rate_bps=1e6,
                   duration_s=1.0).start()
        net.run(2.0)
        assert net.status()["federated_elements"] == 1
        sessions = net.member_of(3).controller.sessions.sessions_of_user(
            src.mac
        )
        assert sessions and not any(s.blocked for s in sessions)
        # The waypoint lives on shard 0, so its rule went remote.
        counters = net.metrics.snapshot().counters()
        assert counters["sharding.remote_rule_ops"] > 0


class TestRoamHandoff:
    def test_cross_shard_move_preserves_session_identity(self):
        net = two_shard_net()
        net.start()
        roamer = net.topology.host_by_name("h1_1")
        CbrUdpFlow(net.sim, roamer, GATEWAY_IP, rate_bps=1e6,
                   duration_s=6.0).start()
        net.run(1.5)
        old_owner = net.member_of(1)
        before = {
            s.session_id
            for s in old_owner.controller.sessions.sessions_of_user(
                roamer.mac
            )
            if not s.blocked
        }
        assert before
        # Roam across the shard boundary: dpid 1 -> dpid 3.
        net.topology.move_host("h1_1", net.topology.as_switches[2])
        roamer.announce()
        net.run(2.5)
        new_owner = net.member_of(3)
        assert new_owner.shard_id != old_owner.shard_id
        after = {
            s.session_id
            for s in new_owner.controller.sessions.sessions_of_user(
                roamer.mac
            )
            if not s.blocked
        }
        # The handoff carried the session records: same ids, new home.
        assert before & after
        assert not new_owner.pending_handoff
        counters = net.metrics.snapshot().counters()
        assert counters["sharding.handoff_sessions"] >= len(before & after)


class TestShardCrashRehome:
    def test_dead_shard_switches_rehome_to_survivors(self):
        net = two_shard_net()
        plan = FaultPlan(seed=1).shard_crash(4.0, 1)
        injector = FaultInjector(net, plan)
        injector.arm()
        net.start()
        src = net.topology.host_by_name("h1_1")
        CbrUdpFlow(net.sim, src, GATEWAY_IP, rate_bps=1e6,
                   duration_s=8.0).start()
        net.run(8.0)
        status = net.status()
        assert status["down"] == [1]
        assert status["rehomed_switches"] == 2
        # The map tracked the moves: every ex-shard-1 dpid now answers
        # to shard 0, over a fresh secure channel.
        for dpid in (3, 4):
            assert net.member_of(dpid).shard_id == 0
            assert net.channels[dpid].controller is net.controllers[0]
        snapshot = net.metrics.snapshot()
        ttd = snapshot.get("recovery.shard_time_to_detect_s")
        ttr = snapshot.get("recovery.shard_time_to_recover_s")
        assert ttd is not None and ttd.count == 1
        assert ttr is not None and ttr.count == 1


class TestDeterminismDigest:
    def _digest_of_run(self):
        net = two_shard_net()
        plan = FaultPlan(seed=2).shard_crash(3.5, 0)
        FaultInjector(net, plan).arm()
        net.start()
        for name in ("h1_1", "h3_1"):
            CbrUdpFlow(net.sim, net.topology.host_by_name(name),
                       GATEWAY_IP, rate_bps=1e6, duration_s=4.0).start()
        net.run(6.0)
        return net.event_digest()

    def test_same_seed_runs_share_a_digest(self):
        assert self._digest_of_run() == self._digest_of_run()

    def test_digest_folds_every_shard_in_order(self):
        net = two_shard_net()
        net.start()
        net.run(1.0)
        full = combined_digest(net.members, net.coordinator)
        assert full == net.event_digest()
        # Dropping the coordinator or a shard changes the digest.
        assert combined_digest(net.members) != full
        assert combined_digest(net.members[:1], net.coordinator) != full
