"""Unit tests for the stateful firewall's connection tracking
(repro.core.conntrack): the five-tuple state machine, reply-direction
promotion, replicated-update merging, idle expiry, and the replication
group's delivery-time liveness check.
"""

from repro.core.conntrack import (
    CLOSED,
    ConnTrackReplicationGroup,
    ConnTrackTable,
    ConnTrackUpdate,
    ESTABLISHED,
    NEW,
    reversed_five_tuple,
)

FORWARD = ("10.0.0.1", "10.0.0.9", 17, 20000, 9000)
REVERSE = ("10.0.0.9", "10.0.0.1", 17, 9000, 20000)


class TestStateMachine:
    def test_first_packet_opens_new(self):
        table = ConnTrackTable()
        entry, update = table.observe(FORWARD, now=1.0, origin="fw-1")
        assert entry.state == NEW
        assert entry.packets == 1
        assert update is not None and update.state == NEW
        assert update.key == FORWARD

    def test_same_direction_repeat_is_silent(self):
        table = ConnTrackTable()
        table.observe(FORWARD, now=1.0, origin="fw-1")
        entry, update = table.observe(FORWARD, now=2.0, origin="fw-1")
        assert update is None
        assert entry.packets == 2
        assert entry.last_seen == 2.0

    def test_reply_direction_promotes_to_established(self):
        table = ConnTrackTable()
        table.observe(FORWARD, now=1.0, origin="fw-1")
        entry, update = table.observe(REVERSE, now=1.5, origin="fw-1")
        # The entry stays keyed by the initiator direction.
        assert entry.key == FORWARD
        assert entry.state == ESTABLISHED
        assert update is not None and update.state == ESTABLISHED
        assert table.established_total == 1
        # Further reply traffic rides the same entry silently.
        _, again = table.observe(REVERSE, now=2.0, origin="fw-1")
        assert again is None

    def test_lookup_matches_either_direction(self):
        table = ConnTrackTable()
        table.observe(FORWARD, now=1.0, origin="fw-1")
        assert table.lookup(FORWARD) is table.lookup(REVERSE)
        assert reversed_five_tuple(FORWARD) == REVERSE

    def test_close_marks_closed_once(self):
        table = ConnTrackTable()
        table.observe(FORWARD, now=1.0, origin="fw-1")
        update = table.close(REVERSE, now=2.0, origin="fw-1")
        assert update is not None and update.state == CLOSED
        assert update.key == FORWARD
        assert table.close(FORWARD, now=3.0, origin="fw-1") is None
        assert table.closed_total == 1

    def test_close_unknown_tuple_is_noop(self):
        table = ConnTrackTable()
        assert table.close(FORWARD, now=1.0, origin="fw-1") is None


class TestReplicatedMerge:
    def test_update_creates_entry_on_cold_replica(self):
        table = ConnTrackTable()
        table.apply_update(
            ConnTrackUpdate(FORWARD, ESTABLISHED, at=1.0, origin="fw-1"),
            now=1.002,
        )
        entry = table.lookup(REVERSE)
        assert entry is not None and entry.state == ESTABLISHED
        assert table.established_total == 1

    def test_state_only_moves_forward(self):
        table = ConnTrackTable()
        table.observe(FORWARD, now=1.0, origin="fw-1")
        table.apply_update(
            ConnTrackUpdate(FORWARD, ESTABLISHED, at=2.0, origin="fw-2"),
            now=2.002,
        )
        assert table.lookup(FORWARD).state == ESTABLISHED
        # A stale NEW replayed after ESTABLISHED must not demote.
        table.apply_update(
            ConnTrackUpdate(FORWARD, NEW, at=1.5, origin="fw-2"), now=2.004
        )
        assert table.lookup(FORWARD).state == ESTABLISHED

    def test_update_refreshes_last_seen_monotonically(self):
        table = ConnTrackTable()
        table.observe(FORWARD, now=5.0, origin="fw-1")
        table.apply_update(
            ConnTrackUpdate(FORWARD, ESTABLISHED, at=1.0, origin="fw-2"),
            now=3.0,
        )
        assert table.lookup(FORWARD).last_seen == 5.0


class TestExpiry:
    def test_idle_entries_expire(self):
        table = ConnTrackTable(idle_timeout_s=10.0)
        table.observe(FORWARD, now=0.0, origin="fw-1")
        assert table.expire(now=9.0) == []
        dropped = table.expire(now=11.0)
        assert [e.key for e in dropped] == [FORWARD]
        assert len(table) == 0
        assert table.expired_total == 1

    def test_closed_entries_expire_at_quarter_timeout(self):
        table = ConnTrackTable(idle_timeout_s=10.0)
        table.observe(FORWARD, now=0.0, origin="fw-1")
        table.close(FORWARD, now=0.0, origin="fw-1")
        assert [e.state for e in table.expire(now=3.0)] == [CLOSED]

    def test_states_histogram(self):
        table = ConnTrackTable()
        table.observe(FORWARD, now=0.0, origin="fw-1")
        other = ("10.0.0.2", "10.0.0.9", 17, 20001, 9000)
        table.observe(other, now=0.0, origin="fw-1")
        table.observe(reversed_five_tuple(other), now=0.5, origin="fw-1")
        assert table.states() == {NEW: 1, ESTABLISHED: 1, CLOSED: 0}


class FakeReplica:
    def __init__(self):
        self.failed = False
        self.hung = False
        self.applied = []

    def apply_conntrack_update(self, update):
        self.applied.append(update)


class TestReplicationGroup:
    def test_publish_fans_out_to_live_peers_after_delay(self, sim):
        group = ConnTrackReplicationGroup(sim, replication_delay_s=2e-3)
        origin, peer_a, peer_b = FakeReplica(), FakeReplica(), FakeReplica()
        for member in (origin, peer_a, peer_b):
            group.register(member)
        update = ConnTrackUpdate(FORWARD, NEW, at=0.0, origin="fw-1")
        group.publish(origin, update)
        sim.run(until=1e-3)
        assert peer_a.applied == []  # not before the replication delay
        sim.run(until=5e-3)
        assert peer_a.applied == [update]
        assert peer_b.applied == [update]
        assert origin.applied == []  # never echoed back to the origin
        assert group.updates_published == 1
        assert group.updates_delivered == 2

    def test_failed_and_hung_peers_miss_delivery(self, sim):
        group = ConnTrackReplicationGroup(sim)
        origin, dead, hung = FakeReplica(), FakeReplica(), FakeReplica()
        for member in (origin, dead, hung):
            group.register(member)
        dead.failed = True
        hung.hung = True
        group.publish(
            origin, ConnTrackUpdate(FORWARD, NEW, at=0.0, origin="fw-1")
        )
        sim.run(until=0.1)
        # The documented consistency gap: a replica down at delivery
        # time simply misses the transition.
        assert dead.applied == []
        assert hung.applied == []
        assert group.updates_delivered == 0

    def test_register_is_idempotent(self, sim):
        group = ConnTrackReplicationGroup(sim)
        replica = FakeReplica()
        group.register(replica)
        group.register(replica)
        assert group.members == [replica]
