"""Property tests: the segmented/checkpointed event store against the
pre-change flat-list oracle.

Two oracles are kept on the shipped classes precisely for this file
and the E16 bench: ``EventLog._query_linear`` (full scan, no segment
skipping) and ``MonitoringComponent._replay_linear`` (fold from t=0,
no checkpoints).  Over randomized event streams:

* checkpointed ``replay(until)`` must equal the linear fold exactly,
* segmented ``query`` must equal the linear scan exactly (lossless
  logs), and for compaction-enabled logs the *lifecycle* kinds must
  still match a flat list of everything ever emitted,
* ``counts_by_kind`` must agree with the retained events across
  segment rotation and compaction.

The seeded-loop style (rather than hypothesis) keeps the stream count
explicit: ``NUM_STREAMS`` independent streams per property, ≥500 in
total across the suite, deterministic under pytest-randomly.
"""

import random

from repro.core.events import SAMPLE_KINDS, EventKind, EventLog
from repro.core.visualization import MonitoringComponent

NUM_STREAMS = 250

LIFECYCLE_KINDS = (
    EventKind.SWITCH_JOIN, EventKind.SWITCH_LEAVE,
    EventKind.LINK_UP, EventKind.LINK_DOWN,
    EventKind.HOST_JOIN, EventKind.HOST_LEAVE, EventKind.HOST_MOVE,
    EventKind.ELEMENT_ONLINE, EventKind.ELEMENT_OFFLINE,
    EventKind.ATTACK_DETECTED, EventKind.FLOW_BLOCKED,
    EventKind.PROTOCOL_IDENTIFIED, EventKind.POLICY_CHANGED,
)


def random_stream(rng, length=None):
    """One plausible monitoring stream: nondecreasing times, a mix of
    lifecycle events and high-churn load samples over few keys."""
    length = length if length is not None else rng.randint(1, 120)
    now = 0.0
    events = []
    macs = [f"m{i}" for i in range(4)]
    dpids = [1, 2, 3]
    for __ in range(length):
        now += rng.choice((0.0, 0.1, 0.5))
        roll = rng.random()
        if roll < 0.45:  # churny samples dominate real logs
            if rng.random() < 0.5:
                events.append((now, EventKind.LINK_LOAD, {
                    "dpid": rng.choice(dpids), "port": rng.randint(1, 3),
                    "utilization": round(rng.random(), 3),
                }))
            else:
                events.append((now, EventKind.ELEMENT_LOAD, {
                    "mac": rng.choice(macs), "cpu": round(rng.random(), 3),
                    "pps": float(rng.randint(0, 1000)),
                }))
        elif roll < 0.65:
            mac = rng.choice(macs)
            kind = rng.choice((EventKind.HOST_JOIN, EventKind.HOST_LEAVE,
                               EventKind.HOST_MOVE))
            data = {"mac": mac}
            if kind != EventKind.HOST_LEAVE:
                data["dpid"] = rng.choice(dpids)
            if kind == EventKind.HOST_JOIN:
                data["ip"] = f"10.0.0.{rng.randint(1, 9)}"
            events.append((now, kind, data))
        elif roll < 0.8:
            dpid = rng.choice(dpids)
            kind = rng.choice((EventKind.SWITCH_JOIN,
                               EventKind.SWITCH_LEAVE))
            events.append((now, kind, {"dpid": dpid}))
        elif roll < 0.9:
            a, b = rng.sample(dpids, 2)
            kind = rng.choice((EventKind.LINK_UP, EventKind.LINK_DOWN))
            events.append((now, kind, {
                "src_dpid": a, "src_port": rng.randint(1, 3),
                "dst_dpid": b, "dst_port": rng.randint(1, 3),
            }))
        else:
            mac = rng.choice(macs)
            events.append((now, rng.choice((
                EventKind.ELEMENT_ONLINE, EventKind.ELEMENT_OFFLINE,
                EventKind.ATTACK_DETECTED, EventKind.FLOW_BLOCKED,
                EventKind.PROTOCOL_IDENTIFIED,
            )), {"mac": mac, "user_mac": mac, "application": "http",
                 "service_type": "ids", "dpid": rng.choice(dpids)}))
    return events


def probe_times(rng, events, count=5):
    """Interesting ``until`` values: None, out-of-range, and moments
    on/between event timestamps."""
    times = [e.time for e in events]
    probes = [None, -1.0, times[-1] + 10.0]
    for __ in range(count):
        probes.append(rng.choice((
            rng.choice(times),
            rng.uniform(0.0, times[-1] + 1.0),
        )))
    return probes


class TestCheckpointedReplayEquivalence:
    def test_replay_matches_linear_oracle_over_random_streams(self):
        for seed in range(NUM_STREAMS):
            rng = random.Random(seed)
            log = EventLog(segment_size=rng.choice((1, 3, 8, 32)))
            mon = MonitoringComponent(
                log,
                checkpoint_interval=rng.choice((2, 5, 13)),
                max_checkpoints=rng.choice((2, 4, 64)),
            )
            for when, kind, data in random_stream(rng):
                log.emit(when, kind, **data)
            for until in probe_times(rng, log.all()):
                checkpointed = mon.replay(until)
                linear = mon._replay_linear(until)
                assert checkpointed == linear, (
                    f"seed={seed} until={until}"
                )

    def test_replay_series_matches_per_moment_replay(self):
        for seed in range(100):
            rng = random.Random(1000 + seed)
            log = EventLog(segment_size=4)
            mon = MonitoringComponent(log, checkpoint_interval=3)
            for when, kind, data in random_stream(rng, length=40):
                log.emit(when, kind, **data)
            horizon = log.all()[-1].time + 1.0
            moments = [round(rng.uniform(0.0, horizon), 2)
                       for __ in range(6)]  # deliberately unsorted
            series = list(mon.replay_series(moments))
            for snap, moment in zip(series, moments):
                assert snap == mon.replay(until=moment), (
                    f"seed={seed} moment={moment} moments={moments}"
                )


class TestSegmentedQueryEquivalence:
    def test_query_matches_linear_oracle_lossless(self):
        for seed in range(100):
            rng = random.Random(2000 + seed)
            log = EventLog(segment_size=rng.choice((1, 4, 16)))
            for when, kind, data in random_stream(rng):
                log.emit(when, kind, **data)
            horizon = log.all()[-1].time
            queries = [
                {},
                {"kind": rng.choice(LIFECYCLE_KINDS)},
                {"kind": EventKind.LINK_LOAD},
                {"since": rng.uniform(0, horizon)},
                {"until": rng.uniform(0, horizon)},
                {"kind": rng.choice(LIFECYCLE_KINDS),
                 "since": rng.uniform(0, horizon),
                 "until": rng.uniform(0, horizon)},
            ]
            for kwargs in queries:
                assert log.query(**kwargs) == log._query_linear(**kwargs), (
                    f"seed={seed} query={kwargs}"
                )
            assert log.counts_by_kind() == {
                kind: len(log._query_linear(kind=kind))
                for kind in log.counts_by_kind()
            }

    def test_compacted_lifecycle_queries_match_flat_oracle(self):
        for seed in range(150):
            rng = random.Random(3000 + seed)
            log = EventLog(segment_size=rng.choice((2, 4, 8)),
                           retention=rng.choice((0, 1, 2)))
            flat = []  # the pre-change unbounded list, event for event
            log.subscribe(flat.append)
            for when, kind, data in random_stream(rng):
                log.emit(when, kind, **data)
            for kind in LIFECYCLE_KINDS:
                expected = [e for e in flat if e.kind == kind]
                assert log.query(kind=kind) == expected, (
                    f"seed={seed} kind={kind}"
                )
            # Sample kinds may be thinned, never grown, and what
            # remains is a subsequence of the flat history.
            for kind in SAMPLE_KINDS:
                kept = log.query(kind=kind)
                original = [e for e in flat if e.kind == kind]
                assert len(kept) <= len(original)
                it = iter(original)
                assert all(e in it for e in kept), f"seed={seed}"
            # counts_by_kind reflects exactly the retained events.
            assert sum(log.counts_by_kind().values()) == len(log)
            assert len(log) + log.compacted_events == len(flat)
