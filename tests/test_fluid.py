"""Unit tests for the fluid fast-forward kernel (repro.net.fluid).

The oracle-equivalence property suite (test_properties_fluid.py) does
the heavy lifting; these tests pin the kernel's mechanics one piece at
a time: eligibility walks and their refusal reasons, the max-min
allocator, materialization triggers, and the observability surface.
"""

import pytest

from repro import build_livesec_network
from repro.net.fluid import FluidRegion, max_min_rates
from repro.net.simulator import Simulator
from repro.workloads.flows import CbrUdpFlow


def fluid_net(**kwargs):
    net = build_livesec_network(
        topology="linear", num_as=2, hosts_per_as=2, fluid=True, **kwargs
    )
    net.start()
    return net


def endpoints(net):
    return [h for h in net.topology.hosts if h is not net.topology.gateway]


def steady_flow(net, src, dst, rate_bps=2e6, **kwargs):
    return CbrUdpFlow(net.sim, src, dst.ip, rate_bps=rate_bps,
                      packet_size=1000, **kwargs).start()


class TestMaxMinRates:
    def test_unconstrained_demands_are_met(self):
        rates = max_min_rates({"a": 5.0, "b": 3.0}, [(100.0, ["a", "b"])])
        assert rates == {"a": 5.0, "b": 3.0}

    def test_saturated_link_splits_fairly(self):
        rates = max_min_rates({"a": 10.0, "b": 10.0}, [(12.0, ["a", "b"])])
        assert rates["a"] == pytest.approx(6.0)
        assert rates["b"] == pytest.approx(6.0)

    def test_small_demand_frees_share_for_big_one(self):
        rates = max_min_rates({"a": 4.0, "b": 10.0}, [(12.0, ["a", "b"])])
        assert rates["a"] == pytest.approx(4.0)
        assert rates["b"] == pytest.approx(8.0)

    def test_multi_constraint_bottleneck(self):
        # b is pinched on its private 2-unit link even though the
        # shared one has room; a takes the slack of the shared link.
        rates = max_min_rates(
            {"a": 10.0, "b": 10.0},
            [(12.0, ["a", "b"]), (2.0, ["b"])],
        )
        assert rates["b"] == pytest.approx(2.0)
        assert rates["a"] == pytest.approx(10.0)


class TestConstruction:
    def test_unknown_congestion_policy_rejected(self):
        with pytest.raises(ValueError):
            FluidRegion(Simulator(), congestion="drop")

    def test_bad_utilization_rejected(self):
        with pytest.raises(ValueError):
            FluidRegion(Simulator(), max_utilization=1.5)

    def test_double_attach_rejected(self):
        sim = Simulator()
        FluidRegion(sim)
        with pytest.raises(RuntimeError):
            FluidRegion(sim)

    def test_deployment_wires_region_and_metrics(self):
        net = fluid_net()
        assert net.fluid is not None
        assert net.sim.fluid is net.fluid
        snap = net.controller.metrics.snapshot()
        assert snap.get("sim.fluid_suspended_flows") is not None
        assert snap.get("sim.fluid_time_saved_s") is not None


class TestSuspension:
    def test_steady_flow_is_suspended_and_synthesized(self):
        net = fluid_net()
        hosts = endpoints(net)
        flow = steady_flow(net, hosts[0], hosts[1])
        net.run(2.0)
        stats = net.fluid.stats()
        assert stats["suspended_flows"] == 1
        assert stats["packets_synthesized"] > 0
        assert stats["time_saved_s"] > 0.5
        assert flow.packets_sent > 100
        assert flow.delivered_bytes(hosts[1]) == flow.bytes_sent

    def test_stop_boundary_resumes_and_unregisters(self):
        net = fluid_net()
        hosts = endpoints(net)
        flow = steady_flow(net, hosts[0], hosts[1], duration_s=1.0)
        net.run(3.0)
        stats = net.fluid.stats()
        assert not flow.running
        assert stats["suspended_flows"] == 0
        assert stats["registered_flows"] == 0
        assert stats["resumes"] >= 1

    def test_oversubscribed_path_refused(self):
        # Both flows squeeze through one 100 Mbps access link; demand
        # exceeds the 0.95 headroom cap, so the refuse policy keeps
        # everything at packet fidelity.
        net = fluid_net()
        hosts = endpoints(net)
        steady_flow(net, hosts[0], hosts[1], rate_bps=60e6)
        steady_flow(net, hosts[0], hosts[1], rate_bps=60e6)
        net.run(1.0)
        stats = net.fluid.stats()
        # Depending on timing the walk sees the standing drop-tail
        # backlog ("queue-backlog") or the allocator sees the
        # oversubscription ("congested"); either way, no suspension.
        refused = (stats["refusals"].get("congested", 0)
                   + stats["refusals"].get("queue-backlog", 0))
        assert refused >= 1
        assert stats["suspended_flows"] == 0
        assert stats["packets_synthesized"] == 0

    def test_rate_policy_suspends_and_accounts_drops(self):
        net = build_livesec_network(
            topology="linear", num_as=2, hosts_per_as=2, fluid=True,
            fluid_config={"congestion": "rate"},
        )
        net.start()
        hosts = endpoints(net)
        flow = steady_flow(net, hosts[0], hosts[1], rate_bps=150e6)
        net.run(1.5)
        stats = net.fluid.stats()
        assert stats["packets_synthesized"] > 0
        # Thinned to the bottleneck share: fewer bytes arrive than
        # were sent, and the gap shows up as first-hop drops.
        assert flow.delivered_bytes(hosts[1]) < flow.bytes_sent
        access = hosts[0].ports[1].link
        assert access.stats(hosts[0].ports[1])["dropped"] > 0


class TestWalkRefusals:
    def test_cold_flow_refused(self):
        net = fluid_net()
        hosts = endpoints(net)
        flow = CbrUdpFlow(net.sim, hosts[0], hosts[1].ip, rate_bps=2e6)
        flow.running = True
        flow._started_at = net.sim.now
        walk, reason = net.fluid._walk(flow)
        assert walk is None and reason == "cold"

    def test_stopped_flow_refused(self):
        net = fluid_net()
        hosts = endpoints(net)
        flow = CbrUdpFlow(net.sim, hosts[0], hosts[1].ip, rate_bps=2e6)
        walk, reason = net.fluid._walk(flow)
        assert walk is None and reason == "not-running"

    def test_custom_emitter_refused(self):
        class ScanFlow(CbrUdpFlow):
            def _emit(self):
                super()._emit()

        net = fluid_net()
        hosts = endpoints(net)
        flow = ScanFlow(net.sim, hosts[0], hosts[1].ip, rate_bps=2e6).start()
        net.run(1.0)
        walk, reason = net.fluid._walk(flow)
        assert walk is None and reason == "custom-emitter"
        assert net.fluid.stats()["suspended_flows"] == 0

    def test_sparse_flow_refused(self):
        # 10 packets/s against a 5 s idle timeout is fine; against a
        # 0.5 s timeout the oracle would race expiry, so refuse.
        net = build_livesec_network(
            topology="linear", num_as=2, hosts_per_as=2, fluid=True,
            idle_timeout_s=0.15,
        )
        net.start()
        hosts = endpoints(net)
        steady_flow(net, hosts[0], hosts[1], rate_bps=1e5)
        net.run(1.0)
        stats = net.fluid.stats()
        assert stats["suspended_flows"] == 0
        assert stats["refusals"].get("sparse-flow", 0) >= 1

    def test_link_down_refused(self):
        net = fluid_net()
        hosts = endpoints(net)
        flow = steady_flow(net, hosts[0], hosts[1])
        net.run(1.0)
        assert net.fluid.stats()["suspended_flows"] == 1
        hosts[0].ports[1].link.up = False  # bypass set_up's materialize
        walk, reason = net.fluid._walk(flow)
        assert walk is None and reason == "link-down"


class TestMaterialization:
    def run_suspended(self):
        net = fluid_net()
        hosts = endpoints(net)
        flow = steady_flow(net, hosts[0], hosts[1])
        net.run(1.0)
        assert net.fluid.stats()["suspended_flows"] == 1
        return net, hosts, flow

    def test_link_admin_change_materializes(self):
        net, hosts, _flow = self.run_suspended()
        hosts[0].ports[1].link.set_up(False)
        stats = net.fluid.stats()
        assert stats["suspended_flows"] == 0
        assert stats["materializations"].get("link-admin") == 1

    def test_new_flow_start_materializes(self):
        net, hosts, _flow = self.run_suspended()
        steady_flow(net, hosts[1], hosts[0])
        net.run(0.2)
        assert net.fluid.stats()["materializations"].get("flow-start", 0) >= 1

    def test_tcp_open_materializes_and_blocks_resuspension(self):
        net, hosts, _flow = self.run_suspended()
        conn = object()
        net.fluid.tcp_opened(conn)
        stats = net.fluid.stats()
        assert stats["suspended_flows"] == 0
        assert stats["materializations"].get("tcp-open") == 1
        net.run(0.5)
        stats = net.fluid.stats()
        assert stats["suspended_flows"] == 0
        assert stats["refusals"].get("tcp-active", 0) >= 1
        net.fluid.tcp_closed(conn)
        net.run(0.5)
        assert net.fluid.stats()["suspended_flows"] == 1

    def test_counters_are_current_at_materialization(self):
        net, hosts, flow = self.run_suspended()
        before = flow.packets_sent
        seen = {}

        def probe():
            net.fluid.materialize_all("test")
            seen["t"] = net.sim.now
            seen["sent"] = flow.packets_sent
            seen["delivered"] = flow.delivered_bytes(hosts[1])

        # Probe off the emission grid so "strictly before" is
        # unambiguous; the advance runs before the event fires.
        net.sim.schedule(0.5003, probe)
        net.run(0.6)
        grid = 0
        while flow.paced_at(grid) < seen["t"]:
            grid += 1
        assert seen["sent"] == grid > before
        assert seen["delivered"] == seen["sent"] * flow.packet_size
