"""Property test for the shard fabric (satellite of the sharding PR):
over hundreds of randomized user/flow cases, a sharded deployment must
produce *exactly* the session outcomes of the single-controller oracle
-- same per-flow admission class (chained / dropped / default-allowed),
same policy attribution -- because sharding is a control-plane
partition, never a semantic change.
"""

import random

from repro.core.deployment import build_livesec_network, build_sharded_network
from repro.core.policy import (
    FailMode,
    FlowSelector,
    Policy,
    PolicyAction,
    PolicyTable,
)
from repro.faults.scenarios import GATEWAY_IP
from repro.workloads import CbrUdpFlow

NUM_CASES = 500
NUM_AS = 4
HOSTS_PER_AS = 2
CHAIN_DPORT = 9000
DROP_DPORT = 9999
UNMATCHED_DPORT = 7777
LAUNCH_WINDOW_S = 3.0
SETTLE_S = 2.0


def oracle_policies():
    """Three outcome classes: chained via ids, dropped, and (for any
    other gateway-bound port) the default-allow path."""
    table = PolicyTable()
    table.begin(source="property-test").add(Policy(
        name="chain-ids",
        selector=FlowSelector(dst_ip=GATEWAY_IP, tp_dst=CHAIN_DPORT),
        action=PolicyAction.CHAIN,
        service_chain=("ids",),
        fail_mode=FailMode("open"),
    )).add(Policy(
        name="drop-badport",
        selector=FlowSelector(dst_ip=GATEWAY_IP, tp_dst=DROP_DPORT),
        action=PolicyAction.DROP,
    )).commit()
    return table


def make_cases(seed: int):
    """The randomized workload: (host_name, sport, dport, start_s)
    tuples, identical for both deployments by construction."""
    rng = random.Random(seed)
    host_names = [
        f"h{i + 1}_{j + 1}"
        for i in range(NUM_AS)
        for j in range(HOSTS_PER_AS)
    ]
    cases = []
    for index in range(NUM_CASES):
        cases.append((
            rng.choice(host_names),
            20000 + index,  # unique five-tuples
            rng.choice((CHAIN_DPORT, DROP_DPORT, UNMATCHED_DPORT)),
            rng.uniform(0.0, LAUNCH_WINDOW_S),
        ))
    return cases


def run_cases(net, cases):
    """Launch every case; returns per-flow outcome classes keyed by
    (src_ip, sport, dport), plus the FLOW_BLOCKED event count.

    A DROP policy never mints a session (the flow dies at its ingress
    drop rule), so its outcome class is the *absence* of a session --
    the blocked-event count is what proves the drop actually ran.
    """
    from repro.core.events import EventKind

    net.start()
    for host_name, sport, dport, start_s in cases:
        host = net.topology.host_by_name(host_name)
        CbrUdpFlow(
            net.sim, host, GATEWAY_IP, rate_bps=1e6,
            sport=sport, dport=dport, max_packets=3,
        ).start(delay_s=start_s)
    net.run(LAUNCH_WINDOW_S + SETTLE_S)

    controllers = getattr(net, "controllers", None) or [net.controller]
    outcomes = {}
    blocked_events = 0
    for controller in controllers:
        for session in controller.sessions:
            key = (session.flow.nw_src, session.flow.tp_src,
                   session.flow.tp_dst)
            outcome = (
                "chained" if session.element_macs else "allowed",
                session.policy_name,
            )
            # A flow must never carry two different outcomes (e.g. one
            # shard allowing what another chained).
            assert outcomes.get(key, outcome) == outcome, (key, outcome)
            outcomes[key] = outcome
        blocked_events += sum(
            1 for event in controller.log.all()
            if event.kind == EventKind.FLOW_BLOCKED
        )
    return outcomes, blocked_events


def hosts_ip_index(net):
    return {
        host.name: host.ip
        for host in net.topology.hosts
    }


def test_sharded_outcomes_match_single_controller_oracle():
    cases = make_cases(seed=7)

    oracle = build_livesec_network(
        topology="linear",
        policies=oracle_policies(),
        elements=[("ids", 2)],
        num_as=NUM_AS,
        hosts_per_as=HOSTS_PER_AS,
        dispatcher="polling",
    )
    expected, expected_blocks = run_cases(oracle, cases)

    sharded = build_sharded_network(
        num_shards=2,
        topology="linear",
        policies=oracle_policies,
        elements=[("ids", 2)],
        num_as=NUM_AS,
        hosts_per_as=HOSTS_PER_AS,
        dispatcher="polling",
    )
    actual, actual_blocks = run_cases(sharded, cases)

    # Same address plan, so outcome keys are directly comparable.
    assert hosts_ip_index(oracle) == hosts_ip_index(sharded)

    # Case for case: a dropped flow has no session in *either* world;
    # every other flow has a session with the same class and policy.
    ips = hosts_ip_index(oracle)
    drop_cases = 0
    for host_name, sport, dport, _ in cases:
        key = (ips[host_name], sport, dport)
        if dport == DROP_DPORT:
            drop_cases += 1
            assert key not in expected, key
            assert key not in actual, key
        else:
            assert key in expected, key
            assert key in actual, key

    # The property: identical outcome classes across the whole run.
    assert actual == expected

    # The drops really happened, once per dropped case, in both.
    assert expected_blocks == drop_cases
    assert actual_blocks == drop_cases

    # And the workload genuinely exercised every class.
    classes = {outcome[0] for outcome in expected.values()}
    assert classes == {"chained", "allowed"}
    assert drop_cases > 0
