"""Unit tests for the ARP/DHCP directory proxy."""

import pytest

from repro.core.directory import DirectoryProxy
from repro.core.nib import NetworkInformationBase
from repro.net.packet import Arp, Dhcp


@pytest.fixture
def proxy():
    nib = NetworkInformationBase()
    nib.learn_host("mB", "10.0.0.2", dpid=2, port=3, now=0.0)
    return DirectoryProxy(nib)


def request(target_ip="10.0.0.2", sender_ip="10.0.0.1", sender_mac="mA"):
    return Arp(opcode=Arp.REQUEST, sender_mac=sender_mac,
               sender_ip=sender_ip, target_mac="ff:ff:ff:ff:ff:ff",
               target_ip=target_ip)


class TestArpProxy:
    def test_known_target_answered_from_nib(self, proxy):
        decision = proxy.handle_arp_request(request())
        assert decision.action == "reply"
        reply = decision.reply_frame.payload
        assert reply.opcode == Arp.REPLY
        assert reply.sender_mac == "mB"
        assert reply.sender_ip == "10.0.0.2"
        assert reply.target_mac == "mA"
        assert decision.reply_frame.dst == "mA"
        assert proxy.arp_replies == 1

    def test_unknown_target_floods(self, proxy):
        decision = proxy.handle_arp_request(request(target_ip="10.9.9.9"))
        assert decision.action == "flood"
        assert decision.reply_frame is None
        assert proxy.arp_floods == 1

    def test_gratuitous_arp_ignored(self, proxy):
        decision = proxy.handle_arp_request(
            request(target_ip="10.0.0.1", sender_ip="10.0.0.1"))
        assert decision.action == "ignore"
        assert proxy.arp_replies == 0 and proxy.arp_floods == 0


class TestDhcp:
    def test_discover_gets_offer(self, proxy):
        response = proxy.handle_dhcp(Dhcp(opcode="discover", client_mac="mC"))
        assert response.opcode == "offer"
        assert response.offered_ip is not None

    def test_request_gets_ack_with_same_lease(self, proxy):
        offer = proxy.handle_dhcp(Dhcp(opcode="discover", client_mac="mC"))
        ack = proxy.handle_dhcp(Dhcp(opcode="request", client_mac="mC"))
        assert ack.opcode == "ack"
        assert ack.offered_ip == offer.offered_ip
        assert proxy.lease_of("mC") == offer.offered_ip
        assert proxy.dhcp_acks == 1

    def test_distinct_clients_distinct_leases(self, proxy):
        a = proxy.handle_dhcp(Dhcp(opcode="discover", client_mac="mC"))
        b = proxy.handle_dhcp(Dhcp(opcode="discover", client_mac="mD"))
        assert a.offered_ip != b.offered_ip

    def test_lease_is_stable_across_discovers(self, proxy):
        first = proxy.handle_dhcp(Dhcp(opcode="discover", client_mac="mC"))
        second = proxy.handle_dhcp(Dhcp(opcode="discover", client_mac="mC"))
        assert first.offered_ip == second.offered_ip

    def test_other_opcodes_ignored(self, proxy):
        assert proxy.handle_dhcp(Dhcp(opcode="ack", client_mac="mC")) is None
