"""Property suite: the fluid kernel against the packet-level oracle.

Every test runs one seeded CBR mix twice -- pure packet fidelity, then
with a :class:`FluidRegion` attached -- and asserts the equivalence
contract (see ``repro/workloads/fluidcheck.py``): identical per-flow
sent/delivered outcomes and identical control-plane event-log digests.
Three tiers cover 300 randomized mixes:

* 200 small mixes (5 flows, 2.5 s window),
* 60 denser mixes (8 flows, 4 s window, faster rates),
* 40 fault mixes (a mid-run link flap; sent counts and digests stay
  exact, delivered frames tolerate the in-flight packets the oracle
  drops at the fault boundary -- see DESIGN.md).

Plus targeted scenarios: a shared bottleneck that must *refuse*
fast-forward, and a sanity check that the kernel actually engages
(a suite that silently never suspends would pass vacuously).
"""

import pytest

from repro.workloads.fluidcheck import compare_modes

SMALL = dict(num_flows=5, traffic_s=2.5, max_rate_bps=2e6)
DENSE = dict(num_flows=8, traffic_s=4.0, max_rate_bps=4e6)
FLAP = dict(num_flows=5, traffic_s=2.5, max_rate_bps=2e6, link_flap=True)


def assert_equivalent(result):
    assert result["equivalent"], {
        "seed": result["seed"],
        "digests_equal": result["digests_equal"],
        "flow_mismatches": result["flow_mismatches"],
        "fluid_stats": result["fluid"].fluid_stats,
    }


@pytest.mark.parametrize("seed", range(200))
def test_small_mix_matches_oracle(seed):
    assert_equivalent(compare_modes(seed, **SMALL))


@pytest.mark.parametrize("seed", range(200, 260))
def test_dense_mix_matches_oracle(seed):
    assert_equivalent(compare_modes(seed, **DENSE))


@pytest.mark.parametrize("seed", range(300, 340))
def test_link_flap_mix_matches_oracle(seed):
    # Delivery is credited at emission, so packets in flight when the
    # flap lands are credited analytically while the oracle drops them
    # mid-path: allow the path's bandwidth-delay product in frames.
    assert_equivalent(
        compare_modes(seed, delivered_tolerance_frames=2, **FLAP)
    )


def test_kernel_actually_engages():
    """Guard against vacuous passes: in a plain steady mix the fluid
    run must really suspend flows and synthesize most of the traffic
    with far fewer events."""
    result = compare_modes(7, **SMALL)
    assert_equivalent(result)
    stats = result["fluid"].fluid_stats
    assert stats["packets_synthesized"] > 0
    total_sent = sum(row["sent_packets"] for row in result["fluid"].flows)
    assert stats["packets_synthesized"] > 0.5 * total_sent
    assert (result["fluid"].events_processed
            < 0.5 * result["packet"].events_processed)


def test_shared_bottleneck_refuses_and_stays_exact():
    """Oversubscribed links: while demand exceeds the headroom cap --
    or a drop-tail backlog is still draining after it subsides -- the
    refuse policy must hold every flow at packet fidelity (drops and
    queueing would make synthesis a model, not an equivalence).  The
    kernel may legitimately engage once the survivors fit, and the
    outcome must still match the oracle exactly."""
    result = compare_modes(
        11, num_flows=4, hosts_per_as=1, traffic_s=1.5, max_rate_bps=60e6
    )
    assert_equivalent(result)
    stats = result["fluid"].fluid_stats
    refused = (stats["refusals"].get("congested", 0)
               + stats["refusals"].get("queue-backlog", 0))
    assert refused >= 1


def test_rate_policy_mix_keeps_wire_schedule():
    """The modeled ``rate`` policy changes delivery accounting under
    congestion but must never change what is *sent*: with headroom the
    two policies coincide, so an uncongested rate-policy mix still
    matches the oracle exactly."""
    assert_equivalent(compare_modes(5, congestion="rate", **SMALL))
