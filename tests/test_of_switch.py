"""Unit tests for the OpenFlow switch datapath and secure channel."""

import pytest

from repro.net import packet as pkt
from repro.net.node import Node, connect
from repro.openflow import messages as msg
from repro.openflow.actions import (
    CONTROLLER_PORT,
    FLOOD_PORT,
    Output,
    SetDlDst,
)
from repro.openflow.channel import SecureChannel
from repro.openflow.controller_base import ControllerBase
from repro.openflow.match import Match
from repro.openflow.switch import OpenFlowSwitch


class Sink(Node):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def receive(self, frame, in_port):
        self.received.append((frame, in_port))


class RecordingController(ControllerBase):
    def __init__(self, sim):
        super().__init__(sim, lldp_enabled=False)
        self.packet_ins = []
        self.flow_removed = []
        self.port_stats = []
        self.flow_stats = []
        self.joined = []
        self.left = []

    def on_packet_in(self, event):
        self.packet_ins.append(event)

    def on_flow_removed(self, event):
        self.flow_removed.append(event)

    def on_port_stats(self, event):
        self.port_stats.append(event)

    def on_flow_stats(self, event):
        self.flow_stats.append(event)

    def on_switch_join(self, handle):
        self.joined.append(handle.dpid)

    def on_switch_leave(self, handle):
        self.left.append(handle.dpid)


@pytest.fixture
def setup(sim):
    """One switch with a controller and two sinks on ports 1 and 2."""
    switch = OpenFlowSwitch(sim, "sw", dpid=7)
    ctrl = RecordingController(sim)
    a, b = Sink(sim, "a"), Sink(sim, "b")
    connect(sim, switch, a, port_a=1)
    connect(sim, switch, b, port_a=2)
    channel = SecureChannel(sim, switch, ctrl)
    channel.connect()
    sim.run(until=sim.now + 0.2)
    return switch, ctrl, a, b, channel


def data_frame():
    return pkt.make_udp("m1", "m2", "1.1.1.1", "2.2.2.2", 5, 6, size=200)


class TestHandshake:
    def test_join_delivers_features(self, sim, setup):
        switch, ctrl, *_ = setup
        assert ctrl.joined == [7]
        assert ctrl.switches[7].ports == (1, 2)

    def test_disconnect_notifies_leave(self, sim, setup):
        switch, ctrl, a, b, channel = setup
        channel.disconnect()
        sim.run(until=sim.now + 0.2)
        assert ctrl.left == [7]
        assert 7 not in ctrl.switches


class TestTableMiss:
    def test_miss_punts_with_buffer(self, sim, setup):
        switch, ctrl, a, b, _ = setup
        switch.receive(data_frame(), 1)
        sim.run(until=sim.now + 0.2)
        assert len(ctrl.packet_ins) == 1
        event = ctrl.packet_ins[0]
        assert event.dpid == 7 and event.in_port == 1
        assert event.buffer_id is not None
        assert event.reason == "no_match"

    def test_packet_out_releases_buffer(self, sim, setup):
        switch, ctrl, a, b, _ = setup
        switch.receive(data_frame(), 1)
        sim.run(until=sim.now + 0.2)
        event = ctrl.packet_ins[0]
        ctrl.send_packet_out(7, actions=(Output(2),), buffer_id=event.buffer_id)
        sim.run(until=sim.now + 0.2)
        assert len(b.received) == 1

    def test_stale_buffer_id_ignored(self, sim, setup):
        switch, ctrl, a, b, _ = setup
        ctrl.send_packet_out(7, actions=(Output(2),), buffer_id=424242)
        sim.run(until=sim.now + 0.2)
        assert b.received == []

    def test_miss_without_channel_drops(self, sim):
        switch = OpenFlowSwitch(sim, "lone", dpid=1)
        switch.receive(data_frame(), 1)
        sim.run(until=sim.now + 0.2)
        assert switch.packets_dropped == 1


class TestFlowModAndForwarding:
    def test_installed_rule_forwards(self, sim, setup):
        switch, ctrl, a, b, _ = setup
        ctrl.send_flow_mod(7, msg.FlowMod.ADD, Match(), actions=(Output(2),))
        sim.run(until=sim.now + 0.2)
        switch.receive(data_frame(), 1)
        sim.run(until=sim.now + 0.2)
        assert len(b.received) == 1
        assert ctrl.packet_ins == []

    def test_flow_mod_with_buffer_forwards_buffered(self, sim, setup):
        switch, ctrl, a, b, _ = setup
        switch.receive(data_frame(), 1)
        sim.run(until=sim.now + 0.2)
        event = ctrl.packet_ins[0]
        ctrl.send_flow_mod(
            7, msg.FlowMod.ADD, Match(), actions=(Output(2),),
            buffer_id=event.buffer_id,
        )
        sim.run(until=sim.now + 0.2)
        assert len(b.received) == 1

    def test_drop_rule_counts_drops(self, sim, setup):
        switch, ctrl, a, b, _ = setup
        ctrl.send_flow_mod(7, msg.FlowMod.ADD, Match(), actions=())
        sim.run(until=sim.now + 0.2)
        switch.receive(data_frame(), 1)
        sim.run(until=sim.now + 0.2)
        assert switch.packets_dropped == 1
        assert b.received == []

    def test_rewrite_then_output(self, sim, setup):
        switch, ctrl, a, b, _ = setup
        ctrl.send_flow_mod(
            7, msg.FlowMod.ADD, Match(),
            actions=(SetDlDst("m9"), Output(2)),
        )
        sim.run(until=sim.now + 0.2)
        switch.receive(data_frame(), 1)
        sim.run(until=sim.now + 0.2)
        assert b.received[0][0].dst == "m9"

    def test_flood_action_skips_in_port(self, sim, setup):
        switch, ctrl, a, b, _ = setup
        ctrl.send_flow_mod(7, msg.FlowMod.ADD, Match(),
                           actions=(Output(FLOOD_PORT),))
        sim.run(until=sim.now + 0.2)
        switch.receive(data_frame(), 1)
        sim.run(until=sim.now + 0.2)
        assert len(b.received) == 1 and a.received == []

    def test_output_to_controller_action(self, sim, setup):
        switch, ctrl, a, b, _ = setup
        ctrl.send_flow_mod(
            7, msg.FlowMod.ADD, Match(),
            actions=(Output(CONTROLLER_PORT), Output(2)),
        )
        sim.run(until=sim.now + 0.2)
        switch.receive(data_frame(), 1)
        sim.run(until=sim.now + 0.2)
        assert len(ctrl.packet_ins) == 1
        assert ctrl.packet_ins[0].reason == "action"
        assert len(b.received) == 1

    def test_multi_output_delivers_independent_copies(self, sim, setup):
        switch, ctrl, a, b, _ = setup
        ctrl.send_flow_mod(7, msg.FlowMod.ADD, Match(),
                           actions=(Output(1), Output(2)))
        sim.run(until=sim.now + 0.2)
        frame = data_frame()
        switch.receive(frame, 3)
        sim.run(until=sim.now + 0.2)
        assert len(a.received) == 1 and len(b.received) == 1
        assert a.received[0][0].packet_id != b.received[0][0].packet_id

    def test_delete_then_miss(self, sim, setup):
        switch, ctrl, a, b, _ = setup
        ctrl.send_flow_mod(7, msg.FlowMod.ADD, Match(), actions=(Output(2),))
        sim.run(until=sim.now + 0.2)
        ctrl.send_flow_mod(7, msg.FlowMod.DELETE, Match())
        sim.run(until=sim.now + 0.2)
        switch.receive(data_frame(), 1)
        sim.run(until=sim.now + 0.2)
        assert len(ctrl.packet_ins) == 1  # back to punting


class TestFlowRemoved:
    def test_idle_expiry_notifies(self, sim, setup):
        switch, ctrl, a, b, _ = setup
        ctrl.send_flow_mod(
            7, msg.FlowMod.ADD, Match(), actions=(Output(2),),
            idle_timeout=1.0, send_flow_removed=True, cookie=99,
        )
        sim.run(until=5.0)
        assert len(ctrl.flow_removed) == 1
        removed = ctrl.flow_removed[0]
        assert removed.reason == "idle" and removed.cookie == 99

    def test_delete_notifies_when_flagged(self, sim, setup):
        switch, ctrl, a, b, _ = setup
        ctrl.send_flow_mod(
            7, msg.FlowMod.ADD, Match(), actions=(Output(2),),
            send_flow_removed=True,
        )
        sim.run(until=sim.now + 0.2)
        ctrl.send_flow_mod(7, msg.FlowMod.DELETE, Match())
        sim.run(until=sim.now + 0.2)
        assert ctrl.flow_removed[0].reason == "delete"

    def test_expiry_observed_by_lookup_notifies_before_sweep(self, sim, setup):
        """A frame arriving after an entry's deadline evicts it and
        emits FlowRemoved immediately -- not at the next sweep tick."""
        switch, ctrl, a, b, _ = setup
        ctrl.send_flow_mod(
            7, msg.FlowMod.ADD, Match(), actions=(Output(2),),
            idle_timeout=1.0, send_flow_removed=True, cookie=42,
        )
        # Installed ~t=0.2, so the idle deadline lands ~t=1.2: after the
        # switch's first sweep tick (~1.007) but before the next (~2.007).
        sim.run(until=1.5)
        assert ctrl.flow_removed == []
        switch.receive(data_frame(), 1)
        sim.run(until=1.7)  # still before the 2.007 sweep
        assert len(ctrl.flow_removed) == 1
        removed = ctrl.flow_removed[0]
        assert removed.reason == "idle" and removed.cookie == 42
        assert len(ctrl.packet_ins) == 1  # the observing frame missed

    def test_no_notification_without_flag(self, sim, setup):
        switch, ctrl, a, b, _ = setup
        ctrl.send_flow_mod(7, msg.FlowMod.ADD, Match(), actions=(Output(2),),
                           idle_timeout=1.0)
        sim.run(until=5.0)
        assert ctrl.flow_removed == []


class TestStats:
    def test_port_stats_reply(self, sim, setup):
        switch, ctrl, a, b, _ = setup
        ctrl.send_flow_mod(7, msg.FlowMod.ADD, Match(), actions=(Output(2),))
        sim.run(until=sim.now + 0.2)
        switch.receive(data_frame(), 1)
        sim.run(until=sim.now + 0.2)
        ctrl.request_port_stats(7)
        sim.run(until=sim.now + 0.2)
        stats = ctrl.port_stats[0].stats
        assert stats[2]["tx_packets"] == 1
        assert stats[2]["tx_bytes"] == 200

    def test_flow_stats_reply(self, sim, setup):
        switch, ctrl, a, b, _ = setup
        ctrl.send_flow_mod(7, msg.FlowMod.ADD, Match(tp_dst=6),
                           actions=(Output(2),), cookie=5)
        sim.run(until=sim.now + 0.2)
        switch.receive(data_frame(), 1)
        sim.run(until=sim.now + 0.2)
        ctrl.request_flow_stats(7)
        sim.run(until=sim.now + 0.2)
        entries = ctrl.flow_stats[0].entries
        assert len(entries) == 1
        assert entries[0]["cookie"] == 5
        assert entries[0]["packets"] == 1
