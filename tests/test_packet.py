"""Unit tests for the packet model."""

import pytest

from repro.net import packet as pkt
from repro.net.packet import Arp, FlowNineTuple, Tcp, Udp, extract_nine_tuple, ip_address, mac_address


class TestAddresses:
    def test_mac_address_formatting(self):
        assert mac_address(1) == "00:00:00:00:00:01"
        assert mac_address(0xAB) == "00:00:00:00:00:ab"
        assert mac_address(256) == "00:00:00:00:01:00"

    def test_mac_address_range_check(self):
        with pytest.raises(ValueError):
            mac_address(2 ** 48)
        with pytest.raises(ValueError):
            mac_address(-1)

    def test_ip_address_carry(self):
        assert ip_address(1) == "10.0.0.1"
        assert ip_address(256) == "10.0.1.0"
        assert ip_address(300) == "10.0.1.44"

    def test_ip_address_custom_base(self):
        assert ip_address(5, base="192.168.1.0") == "192.168.1.5"


class TestBuilders:
    def test_make_udp_default_size_includes_headers(self):
        frame = pkt.make_udp("m1", "m2", "1.1.1.1", "2.2.2.2", 10, 20,
                             payload=b"hello")
        assert frame.size == 18 + 20 + 8 + 5
        assert isinstance(frame.transport(), Udp)
        assert frame.app_payload() == b"hello"

    def test_make_tcp_flags(self):
        frame = pkt.make_tcp("m1", "m2", "1.1.1.1", "2.2.2.2", 10, 80,
                             flags="S")
        segment = frame.transport()
        assert isinstance(segment, Tcp) and segment.flags == "S"

    def test_explicit_size_overrides(self):
        frame = pkt.make_udp("m1", "m2", "1.1.1.1", "2.2.2.2", 1, 2,
                             payload=b"x", size=1500)
        assert frame.size == 1500

    def test_arp_request_is_broadcast(self):
        frame = pkt.make_arp_request("m1", "10.0.0.1", "10.0.0.2")
        assert frame.is_broadcast
        assert frame.ethertype == pkt.ETH_TYPE_ARP
        assert isinstance(frame.payload, Arp) and frame.payload.is_request

    def test_arp_reply_is_unicast(self):
        frame = pkt.make_arp_reply("m1", "10.0.0.1", "m2", "10.0.0.2")
        assert not frame.is_broadcast
        assert not frame.payload.is_request

    def test_icmp_echo_builder(self):
        frame = pkt.make_icmp_echo("m1", "m2", "1.1.1.1", "2.2.2.2", ident=7)
        assert frame.ip().proto == pkt.IP_PROTO_ICMP
        assert frame.ip().payload.ident == 7

    def test_lldp_builder(self):
        frame = pkt.make_lldp(chassis_id=3, port_id=2)
        assert frame.ethertype == pkt.ETH_TYPE_LLDP
        assert frame.payload.chassis_id == 3
        assert frame.payload.port_id == 2


class TestFrameHelpers:
    def test_packet_ids_unique(self):
        a = pkt.make_udp("m1", "m2", "1.1.1.1", "2.2.2.2", 1, 2)
        b = pkt.make_udp("m1", "m2", "1.1.1.1", "2.2.2.2", 1, 2)
        assert a.packet_id != b.packet_id

    def test_clone_is_deep_and_fresh_id(self):
        frame = pkt.make_tcp("m1", "m2", "1.1.1.1", "2.2.2.2", 1, 2,
                             payload=b"data")
        copy = frame.clone()
        assert copy.packet_id != frame.packet_id
        copy.dst = "rewritten"
        copy.ip().dst = "9.9.9.9"
        assert frame.dst == "m2"
        assert frame.ip().dst == "2.2.2.2"

    def test_ip_returns_none_for_arp(self):
        frame = pkt.make_arp_request("m1", "1.1.1.1", "2.2.2.2")
        assert frame.ip() is None
        assert frame.transport() is None
        assert frame.app_payload() == b""


class TestNineTuple:
    def test_extract_from_tcp(self):
        frame = pkt.make_tcp("m1", "m2", "1.1.1.1", "2.2.2.2", 1000, 80)
        nine = extract_nine_tuple(frame)
        assert nine == FlowNineTuple(
            vlan=None, dl_src="m1", dl_dst="m2", dl_type=pkt.ETH_TYPE_IP,
            nw_src="1.1.1.1", nw_dst="2.2.2.2", nw_proto=pkt.IP_PROTO_TCP,
            tp_src=1000, tp_dst=80,
        )

    def test_extract_from_non_ip_wildcards_network_fields(self):
        frame = pkt.make_arp_request("m1", "1.1.1.1", "2.2.2.2")
        nine = extract_nine_tuple(frame)
        assert nine.nw_src is None and nine.tp_src is None
        assert nine.dl_type == pkt.ETH_TYPE_ARP

    def test_icmp_has_proto_but_no_ports(self):
        frame = pkt.make_icmp_echo("m1", "m2", "1.1.1.1", "2.2.2.2")
        nine = extract_nine_tuple(frame)
        assert nine.nw_proto == pkt.IP_PROTO_ICMP
        assert nine.tp_src is None and nine.tp_dst is None

    def test_reversed_swaps_both_layers(self):
        frame = pkt.make_tcp("m1", "m2", "1.1.1.1", "2.2.2.2", 1000, 80)
        nine = extract_nine_tuple(frame)
        rev = nine.reversed()
        assert rev.dl_src == "m2" and rev.dl_dst == "m1"
        assert rev.nw_src == "2.2.2.2" and rev.nw_dst == "1.1.1.1"
        assert rev.tp_src == 80 and rev.tp_dst == 1000

    def test_reversed_is_involution(self):
        frame = pkt.make_udp("m1", "m2", "1.1.1.1", "2.2.2.2", 5, 6)
        nine = extract_nine_tuple(frame)
        assert nine.reversed().reversed() == nine

    def test_vlan_preserved(self):
        frame = pkt.make_udp("m1", "m2", "1.1.1.1", "2.2.2.2", 5, 6, vlan=42)
        assert extract_nine_tuple(frame).vlan == 42
