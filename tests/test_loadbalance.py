"""Unit tests for the dispatchers and load-balancer book-keeping."""

import pytest

from repro.core.loadbalance import (
    DISPATCHERS,
    ElementLoad,
    HashDispatcher,
    LeastConnectionsDispatcher,
    LoadBalancer,
    MinLoadDispatcher,
    RoundRobinDispatcher,
    load_deviation,
    make_dispatcher,
)
from repro.core.policy import Granularity
from repro.net.packet import FlowNineTuple


def flow(tp_src=1000):
    return FlowNineTuple(
        vlan=None, dl_src="m1", dl_dst="m2", dl_type=0x0800,
        nw_src="10.0.0.1", nw_dst="10.0.0.2", nw_proto=6,
        tp_src=tp_src, tp_dst=80,
    )


def candidates(count=3, pps=0.0):
    return [
        ElementLoad(mac=f"e{index}", reported_pps=pps, reported_cpu=0.0,
                    assigned_flows=0, pending=0)
        for index in range(count)
    ]


class TestDispatcherFactory:
    def test_all_paper_names_present(self):
        assert set(DISPATCHERS) == {"polling", "hash", "queuing", "minload"}

    def test_make_dispatcher(self):
        assert isinstance(make_dispatcher("polling"), RoundRobinDispatcher)
        assert isinstance(make_dispatcher("hash"), HashDispatcher)
        assert isinstance(make_dispatcher("queuing"),
                          LeastConnectionsDispatcher)
        assert isinstance(make_dispatcher("minload"), MinLoadDispatcher)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            make_dispatcher("round-robin")


class TestRoundRobin:
    def test_strict_rotation(self):
        dispatcher = RoundRobinDispatcher()
        picks = [dispatcher.pick(candidates(), flow(i), None).mac
                 for i in range(6)]
        assert picks == ["e0", "e1", "e2", "e0", "e1", "e2"]

    def test_rotation_stable_under_churn(self):
        # The cursor is the last-picked MAC, not an index: removing an
        # element must not reshuffle where "next" lands among the
        # survivors.
        dispatcher = RoundRobinDispatcher()
        pool = candidates(3)
        assert dispatcher.pick(pool, flow(1), None).mac == "e0"
        assert dispatcher.pick(pool, flow(2), None).mac == "e1"
        # e1 goes offline; rotation continues cleanly past the cursor.
        shrunk = [c for c in pool if c.mac != "e1"]
        picks = [dispatcher.pick(shrunk, flow(3 + i), None).mac
                 for i in range(4)]
        assert picks == ["e2", "e0", "e2", "e0"]

    def test_cursor_survives_element_replacement(self):
        dispatcher = RoundRobinDispatcher()
        dispatcher.pick(candidates(3), flow(1), None)  # cursor at e0
        # A whole new candidate set (e.g. after failover re-dispatch):
        # the pick is the first MAC after the cursor, wrapping.
        fresh = [
            ElementLoad(mac=mac, reported_pps=0.0, reported_cpu=0.0,
                        assigned_flows=0, pending=0)
            for mac in ("a9", "e5")
        ]
        assert dispatcher.pick(fresh, flow(2), None).mac == "e5"
        assert dispatcher.pick(fresh, flow(3), None).mac == "a9"


class TestHash:
    def test_deterministic_per_flow(self):
        dispatcher = HashDispatcher()
        first = dispatcher.pick(candidates(), flow(1), None)
        second = dispatcher.pick(candidates(), flow(1), None)
        assert first.mac == second.mac

    def test_user_key_overrides_flow(self):
        dispatcher = HashDispatcher()
        a = dispatcher.pick(candidates(), flow(1), "alice")
        b = dispatcher.pick(candidates(), flow(2), "alice")
        assert a.mac == b.mac

    def test_spreads_over_many_flows(self):
        dispatcher = HashDispatcher()
        picks = {dispatcher.pick(candidates(8), flow(i), None).mac
                 for i in range(200)}
        assert len(picks) == 8


class TestLeastConnections:
    def test_prefers_fewest_assigned(self):
        pool = candidates()
        pool[0].assigned_flows = 5
        pool[1].assigned_flows = 1
        pool[2].assigned_flows = 3
        dispatcher = LeastConnectionsDispatcher()
        assert dispatcher.pick(pool, flow(), None).mac == "e1"

    def test_pending_counts_too(self):
        pool = candidates()
        pool[0].pending = 2
        dispatcher = LeastConnectionsDispatcher()
        assert dispatcher.pick(pool, flow(), None).mac == "e1"


class TestMinLoad:
    def test_prefers_lowest_reported_pps(self):
        pool = candidates()
        pool[0].reported_pps = 900
        pool[1].reported_pps = 100
        pool[2].reported_pps = 500
        dispatcher = MinLoadDispatcher()
        assert dispatcher.pick(pool, flow(), None).mac == "e1"

    def test_pending_bias_avoids_stale_reports(self):
        pool = candidates(2)
        pool[0].reported_pps = 100
        pool[0].pending = 10  # 10 x 200 pps bias -> effective 2100
        pool[1].reported_pps = 300
        dispatcher = MinLoadDispatcher(pending_bias_pps=200.0)
        assert dispatcher.pick(pool, flow(), None).mac == "e1"


class TestLoadBalancer:
    def test_assign_and_release(self):
        balancer = LoadBalancer(RoundRobinDispatcher())
        mac = balancer.assign(candidates(), flow(1))
        assert balancer.element_of(flow(1)) == mac
        assert balancer.assigned_flow_counts()[mac] == 1
        assert balancer.release(flow(1)) == (mac,)
        assert balancer.assigned_flow_counts()[mac] == 0
        assert balancer.element_of(flow(1)) is None

    def test_release_unknown_flow_is_noop(self):
        balancer = LoadBalancer(RoundRobinDispatcher())
        assert balancer.release(flow(1)) == ()

    def test_chained_flow_holds_multiple_assignments(self):
        balancer = LoadBalancer(RoundRobinDispatcher())
        first = balancer.assign(candidates(), flow(1))
        second = balancer.assign(candidates(), flow(1))
        assert balancer.elements_of(flow(1)) == (first, second)
        assert sum(balancer.assigned_flow_counts().values()) == 2
        released = balancer.release(flow(1))
        assert sorted(released) == sorted((first, second))
        assert sum(balancer.assigned_flow_counts().values()) == 0

    def test_no_candidates_raises(self):
        balancer = LoadBalancer(RoundRobinDispatcher())
        with pytest.raises(ValueError):
            balancer.assign([], flow(1))

    def test_user_granularity_pins(self):
        balancer = LoadBalancer(RoundRobinDispatcher())
        first = balancer.assign(candidates(), flow(1), user="alice",
                                granularity=Granularity.USER)
        second = balancer.assign(candidates(), flow(2), user="alice",
                                 granularity=Granularity.USER)
        assert first == second

    def test_user_pin_dropped_when_element_gone(self):
        balancer = LoadBalancer(RoundRobinDispatcher())
        first = balancer.assign(candidates(), flow(1), user="alice",
                                granularity=Granularity.USER)
        remaining = [c for c in candidates() if c.mac != first]
        second = balancer.assign(remaining, flow(2), user="alice",
                                 granularity=Granularity.USER)
        assert second != first

    def test_flow_granularity_ignores_user_pin(self):
        balancer = LoadBalancer(RoundRobinDispatcher())
        picks = {
            balancer.assign(candidates(), flow(i), user="alice",
                            granularity=Granularity.FLOW)
            for i in range(3)
        }
        assert len(picks) == 3

    def test_forget_element_orphans_flows(self):
        balancer = LoadBalancer(RoundRobinDispatcher())
        pool = candidates(1)
        balancer.assign(pool, flow(1))
        balancer.assign(pool, flow(2))
        orphans = balancer.forget_element("e0")
        assert orphans == 2
        assert balancer.element_of(flow(1)) is None

    def test_load_report_clears_pending(self):
        balancer = LoadBalancer(MinLoadDispatcher())
        pool = candidates(2)
        balancer.assign(pool, flow(1))
        mac = balancer.element_of(flow(1))
        assert balancer._pending[mac] == 1
        balancer.on_load_report(mac)
        assert balancer._pending[mac] == 0

    def test_release_frees_pending_too(self):
        # Regression: a flow torn down before the element's next load
        # report used to leave _pending inflated forever, biasing the
        # queuing/minload dispatchers away from the element.
        balancer = LoadBalancer(LeastConnectionsDispatcher())
        pool = candidates(2)
        balancer.assign(pool, flow(1))
        mac = balancer.element_of(flow(1))
        assert balancer._pending[mac] == 1
        balancer.release(flow(1))
        assert balancer._pending[mac] == 0
        # Short-lived flows churning on one element must not build a
        # permanent bias: after the churn, both elements look equal.
        for index in range(50):
            balancer.assign(pool, flow(100 + index))
            balancer.release(flow(100 + index))
        assert balancer._pending["e0"] == 0
        assert balancer._pending["e1"] == 0

    def test_release_after_report_does_not_go_negative(self):
        balancer = LoadBalancer(LeastConnectionsDispatcher())
        pool = candidates(2)
        balancer.assign(pool, flow(1))
        mac = balancer.element_of(flow(1))
        balancer.on_load_report(mac)  # pending already decayed to 0
        balancer.release(flow(1))
        assert balancer._pending[mac] == 0


class TestDeviationMetric:
    def test_balanced_loads(self):
        assert load_deviation([10.0, 10.0, 10.0]) == 0.0

    def test_single_element_is_zero(self):
        assert load_deviation([42.0]) == 0.0

    def test_all_zero_is_zero(self):
        assert load_deviation([0.0, 0.0]) == 0.0

    def test_max_relative_deviation(self):
        # mean 10, max deviation 5 -> 50%
        assert load_deviation([5.0, 10.0, 15.0]) == pytest.approx(0.5)

    def test_five_percent_bound_example(self):
        assert load_deviation([100, 103, 98, 99]) <= 0.05
