"""Unit tests for the discrete-event kernel."""

import pytest



class TestScheduling:
    def test_events_fire_in_time_order(self, sim):
        fired = []
        sim.schedule(2.0, fired.append, "late")
        sim.schedule(1.0, fired.append, "early")
        sim.schedule(3.0, fired.append, "latest")
        sim.run()
        assert fired == ["early", "late", "latest"]

    def test_simultaneous_events_fire_in_insertion_order(self, sim):
        fired = []
        for tag in ("a", "b", "c"):
            sim.schedule(1.0, fired.append, tag)
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_now_advances_to_event_time(self, sim):
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5]
        assert sim.now == 1.5

    def test_schedule_at_absolute_time(self, sim):
        fired = []
        sim.schedule_at(4.0, fired.append, "x")
        sim.run()
        assert sim.now == 4.0 and fired == ["x"]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)

    def test_events_scheduled_during_run_fire(self, sim):
        fired = []

        def chain():
            fired.append(sim.now)
            if len(fired) < 3:
                sim.schedule(1.0, chain)

        sim.schedule(1.0, chain)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_callback_args_passed(self, sim):
        result = {}
        sim.schedule(1.0, result.__setitem__, "key", "value")
        sim.run()
        assert result == {"key": "value"}


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        handle = sim.schedule(1.0, fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        sim.run()

    def test_cancel_one_of_many(self, sim):
        fired = []
        keep = sim.schedule(1.0, fired.append, "keep")
        drop = sim.schedule(1.0, fired.append, "drop")
        drop.cancel()
        sim.run()
        assert fired == ["keep"]
        assert not keep.cancelled


class TestRunUntil:
    def test_until_stops_before_later_events(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "in")
        sim.schedule(5.0, fired.append, "out")
        sim.run(until=2.0)
        assert fired == ["in"]
        assert sim.now == 2.0

    def test_until_advances_clock_with_empty_queue(self, sim):
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_resume_after_until(self, sim):
        fired = []
        sim.schedule(5.0, fired.append, "later")
        sim.run(until=2.0)
        sim.run()
        assert fired == ["later"]

    def test_max_events_bound(self, sim):
        fired = []
        for index in range(10):
            sim.schedule(float(index + 1), fired.append, index)
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_events_processed_counter(self, sim):
        for index in range(5):
            sim.schedule(float(index + 1), lambda: None)
        sim.run()
        assert sim.events_processed == 5


class TestPeriodic:
    def test_every_fires_repeatedly(self, sim):
        ticks = []
        sim.every(1.0, lambda: ticks.append(sim.now))
        sim.run(until=3.5)
        assert ticks == [1.0, 2.0, 3.0]

    def test_every_cancel_stops_series(self, sim):
        ticks = []
        handle = sim.every(1.0, lambda: ticks.append(sim.now))
        sim.schedule(2.5, handle.cancel)
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0]

    def test_every_custom_start(self, sim):
        ticks = []
        sim.every(1.0, lambda: ticks.append(sim.now), start=0.25)
        sim.run(until=2.5)
        assert ticks == [0.25, 1.25, 2.25]

    def test_every_rejects_nonpositive_interval(self, sim):
        with pytest.raises(ValueError):
            sim.every(0.0, lambda: None)

    def test_pending_counts_uncancelled(self, sim):
        sim.schedule(1.0, lambda: None)
        handle = sim.schedule(2.0, lambda: None)
        handle.cancel()
        assert sim.pending() == 1
