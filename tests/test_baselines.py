"""Unit tests for the traditional and PLayer baseline architectures."""


from repro.baselines import (
    InlineMiddlebox,
    build_pswitch_network,
    build_traditional_network,
)
from repro.baselines.traditional import INSIDE_PORT, OUTSIDE_PORT
from repro.elements.signatures import DEFAULT_IDS_RULES
from repro.net import packet as pkt
from repro.net.node import Node, connect
from repro.workloads import CbrUdpFlow


class Sink(Node):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def receive(self, frame, in_port):
        self.received.append(frame)


class TestInlineMiddlebox:
    def test_forwards_between_arms(self, sim):
        middlebox = InlineMiddlebox(sim, "m", capacity_bps=1e9)
        inside, outside = Sink(sim, "in"), Sink(sim, "out")
        connect(sim, inside, middlebox, port_b=INSIDE_PORT)
        connect(sim, outside, middlebox, port_b=OUTSIDE_PORT)
        frame = pkt.make_udp("a", "b", "1.1.1.1", "2.2.2.2", 1, 2)
        middlebox.receive(frame, INSIDE_PORT)
        sim.run()
        assert len(outside.received) == 1
        assert middlebox.processed_packets == 1

    def test_reverse_direction(self, sim):
        middlebox = InlineMiddlebox(sim, "m")
        inside, outside = Sink(sim, "in"), Sink(sim, "out")
        connect(sim, inside, middlebox, port_b=INSIDE_PORT)
        connect(sim, outside, middlebox, port_b=OUTSIDE_PORT)
        middlebox.receive(pkt.make_udp("a", "b", "1.1.1.1", "2.2.2.2", 1, 2),
                          OUTSIDE_PORT)
        sim.run()
        assert len(inside.received) == 1

    def test_capacity_limits_throughput(self, sim):
        middlebox = InlineMiddlebox(sim, "m", capacity_bps=12e6,
                                    per_packet_cost_s=0.0,
                                    max_queue_bytes=10**9)
        inside, outside = Sink(sim, "in"), Sink(sim, "out")
        connect(sim, inside, middlebox, port_b=INSIDE_PORT)
        connect(sim, outside, middlebox, port_b=OUTSIDE_PORT,
                bandwidth_bps=1e9)
        for __ in range(100):
            middlebox.receive(
                pkt.make_udp("a", "b", "1.1.1.1", "2.2.2.2", 1, 2,
                             size=1500), INSIDE_PORT)
        sim.run(until=0.05)
        # 12 Mbps -> 1000 pps -> ~50 frames in 50 ms.
        assert 40 <= len(outside.received) <= 55

    def test_overflow_drops(self, sim):
        middlebox = InlineMiddlebox(sim, "m", capacity_bps=1e6,
                                    max_queue_bytes=3000)
        inside, outside = Sink(sim, "in"), Sink(sim, "out")
        connect(sim, inside, middlebox, port_b=INSIDE_PORT)
        connect(sim, outside, middlebox, port_b=OUTSIDE_PORT)
        for __ in range(5):
            middlebox.receive(
                pkt.make_udp("a", "b", "1.1.1.1", "2.2.2.2", 1, 2,
                             size=1500), INSIDE_PORT)
        sim.run(until=1.0)
        assert middlebox.dropped_overload == 3

    def test_inline_ids_drops_malicious(self, sim):
        middlebox = InlineMiddlebox(sim, "m", rules=DEFAULT_IDS_RULES)
        inside, outside = Sink(sim, "in"), Sink(sim, "out")
        connect(sim, inside, middlebox, port_b=INSIDE_PORT)
        connect(sim, outside, middlebox, port_b=OUTSIDE_PORT)
        bad = pkt.make_tcp("a", "b", "1.1.1.1", "2.2.2.2", 1, 80,
                           payload=b"' OR '1'='1")
        good = pkt.make_tcp("a", "b", "1.1.1.1", "2.2.2.2", 1, 80,
                            payload=b"GET / HTTP/1.1")
        middlebox.receive(bad, INSIDE_PORT)
        middlebox.receive(good, INSIDE_PORT)
        sim.run()
        assert len(outside.received) == 1
        assert middlebox.dropped_malicious == 1


class TestTraditionalNetwork:
    def test_end_to_end_through_middlebox(self):
        net = build_traditional_network()
        net.run(1.0)
        net.announce_all()
        net.run(0.5)
        flow = CbrUdpFlow(net.sim, net.host("h1"), net.gateway.ip,
                          rate_bps=5e6, duration_s=1.0)
        flow.start()
        net.run(2.0)
        assert flow.delivered_bytes(net.gateway) > 0
        assert net.middlebox.processed_packets > 0

    def test_east_west_bypasses_middlebox(self):
        """The coverage hole the paper criticizes: internal traffic
        never touches the gateway middlebox."""
        net = build_traditional_network()
        net.run(1.0)
        net.announce_all()
        net.run(0.5)
        h1, h2 = net.host("h1"), net.host("h3")  # different access switches
        bytes_before = net.middlebox.processed_bytes
        flow = CbrUdpFlow(net.sim, h1, h2.ip, rate_bps=5e6, duration_s=1.0,
                          packet_size=1500)
        flow.start()
        net.run(2.0)
        assert flow.delivered_bytes(h2) > 0
        # ARP floods and STP hellos do reach the inline box (64B
        # chatter at ~20/s), but none of the 1500-byte data frames may.
        assert net.middlebox.processed_bytes - bytes_before < 5000
        assert flow.delivered_bytes(h2) > 100 * 1500

    def test_without_middlebox_is_pure_legacy(self):
        net = build_traditional_network(with_middlebox=False)
        net.run(1.0)
        net.announce_all()
        net.run(0.5)
        host = net.host("h1")
        host.ping(net.gateway.ip)
        net.run(1.0)
        assert len(host.ping_rtts) == 1
        assert net.middlebox is None


class TestPSwitchNetwork:
    def test_gateway_traffic_steered_through_local_middlebox(self):
        net = build_pswitch_network()
        net.run(1.0)
        net.announce_all()
        net.run(0.5)
        flow = CbrUdpFlow(net.sim, net.host("h1"), net.gateway.ip,
                          rate_bps=5e6, duration_s=1.0)
        flow.start()
        net.run(2.0)
        assert flow.delivered_bytes(net.gateway) > 0
        assert net.middleboxes[0].processed_packets > 0
        assert net.pswitches[0].steered > 0

    def test_other_zone_middleboxes_stay_idle(self):
        """PLayer's limitation: the hot zone cannot borrow capacity."""
        net = build_pswitch_network(num_pswitches=3)
        net.run(1.0)
        net.announce_all()
        net.run(0.5)
        flow = CbrUdpFlow(net.sim, net.host("h1"), net.gateway.ip,
                          rate_bps=5e6, duration_s=1.0)
        flow.start()
        net.run(2.0)
        assert net.middleboxes[0].processed_packets > 0
        assert net.middleboxes[1].processed_packets == 0
        assert net.middleboxes[2].processed_packets == 0

    def test_non_gateway_traffic_not_steered(self):
        net = build_pswitch_network(hosts_per_pswitch=2)
        net.run(1.0)
        net.announce_all()
        net.run(0.5)
        h1, h2 = net.host("h1"), net.host("h2")  # same pswitch
        flow = CbrUdpFlow(net.sim, h1, h2.ip, rate_bps=5e6, duration_s=0.5)
        flow.start()
        net.run(1.5)
        assert flow.delivered_bytes(h2) > 0
        assert net.middleboxes[0].processed_packets == 0

    def test_utilization_report(self):
        net = build_pswitch_network()
        net.run(1.0)
        utilizations = net.middlebox_utilizations(window_start=0.0)
        assert len(utilizations) == 4
        assert all(u == 0.0 for u in utilizations)
