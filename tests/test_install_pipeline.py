"""Unit tests for the batched barrier-acked install pipeline."""

from dataclasses import dataclass, field
from typing import List

import pytest

from repro.core.routing import RuleSpec
from repro.net.simulator import Simulator
from repro.obs import MetricsRegistry
from repro.openflow import messages as ofmsg
from repro.openflow.match import Match
from repro.openflow.pipeline import InstallPipeline


@dataclass
class FakeChannel:
    sent: List[object] = field(default_factory=list)

    def to_switch(self, message) -> None:
        self.sent.append(message)


@dataclass
class FakeHandle:
    dpid: int
    channel: FakeChannel = field(default_factory=FakeChannel)


class FakeController:
    """Just the surface the pipeline borrows: sim, switches, the sender."""

    def __init__(self, sim, dpids=(1,)):
        self.sim = sim
        self.switches = {dpid: FakeHandle(dpid) for dpid in dpids}
        self.flow_mods: List[dict] = []

    def send_flow_mod(self, dpid, **kwargs) -> None:
        self.flow_mods.append({"dpid": dpid, **kwargs})


def rule(dpid=1, tp_dst=80) -> RuleSpec:
    return RuleSpec(dpid=dpid, match=Match(tp_dst=tp_dst), actions=())


@pytest.fixture
def sim():
    return Simulator()


def barriers(controller, dpid=1):
    return [
        m for m in controller.switches[dpid].channel.sent
        if isinstance(m, ofmsg.BarrierRequest)
    ]


class TestBatching:
    def test_same_tick_installs_share_one_barrier(self, sim):
        controller = FakeController(sim)
        pipeline = InstallPipeline(controller, metrics=MetricsRegistry())
        for tp_dst in (80, 443, 8080):
            pipeline.install(rule(tp_dst=tp_dst))
        assert len(controller.flow_mods) == 3  # FlowMods go out immediately
        assert barriers(controller) == []  # barrier waits for the flush
        sim.run(0.0)
        assert len(barriers(controller)) == 1
        assert pipeline.flowmods_sent.value == 3
        assert pipeline.barriers_sent.value == 1

    def test_per_datapath_batches(self, sim):
        controller = FakeController(sim, dpids=(1, 2))
        pipeline = InstallPipeline(controller)
        pipeline.install(rule(dpid=1))
        pipeline.install(rule(dpid=2))
        pipeline.install(rule(dpid=1, tp_dst=443))
        sim.run(0.0)
        assert len(barriers(controller, 1)) == 1
        assert len(barriers(controller, 2)) == 1

    def test_next_tick_opens_a_new_batch(self, sim):
        controller = FakeController(sim)
        pipeline = InstallPipeline(controller)
        pipeline.install(rule())
        sim.run(0.01)
        pipeline.install(rule(tp_dst=443))
        sim.run(0.02)
        assert len(barriers(controller)) == 2

    def test_batching_off_means_barrier_per_flowmod(self, sim):
        controller = FakeController(sim)
        pipeline = InstallPipeline(controller, batching=False)
        pipeline.install(rule())
        pipeline.install(rule(tp_dst=443))
        assert len(barriers(controller)) == 2  # no flush needed

    def test_unknown_datapath_is_ignored(self, sim):
        controller = FakeController(sim)
        pipeline = InstallPipeline(controller)
        pipeline.install(rule(dpid=99))
        sim.run(0.0)
        assert controller.flow_mods == []
        assert pipeline.pending_rules() == 0


class TestRetry:
    def test_barrier_reply_settles_the_batch(self, sim):
        controller = FakeController(sim)
        pipeline = InstallPipeline(controller, timeout_s=0.05)
        pipeline.install(rule())
        sim.run(0.0)
        (barrier,) = barriers(controller)
        pipeline.on_barrier_reply(1, barrier.xid)
        sim.run(1.0)
        assert len(controller.flow_mods) == 1  # never re-sent
        assert pipeline.pending_rules() == 0

    def test_timeout_resends_whole_batch_with_backoff(self, sim):
        controller = FakeController(sim)
        pipeline = InstallPipeline(
            controller, timeout_s=0.05, metrics=MetricsRegistry()
        )
        pipeline.install(rule())
        pipeline.install(rule(tp_dst=443))
        sim.run(0.0)
        sim.run(0.06)  # first timeout fires
        assert len(controller.flow_mods) == 4  # both rules re-sent
        assert len(barriers(controller)) == 2
        assert pipeline.install_retries.value == 2  # counted per rule
        # The retry doubles the timeout: no third attempt before
        # 0.06 + 0.1 = 0.16s on the simulated clock.
        sim.run(0.15)
        assert len(barriers(controller)) == 2
        sim.run(0.17)
        assert len(barriers(controller)) == 3

    def test_gives_up_after_max_attempts(self, sim):
        controller = FakeController(sim)
        pipeline = InstallPipeline(
            controller, timeout_s=0.01, max_attempts=3,
            metrics=MetricsRegistry(),
        )
        pipeline.install(rule())
        sim.run(5.0)
        assert pipeline.install_failures.value == 1
        assert pipeline.pending_rules() == 0
        # 3 attempts: the original send plus two retries.
        assert len(controller.flow_mods) == 3

    def test_retry_preserves_buffer_id(self, sim):
        controller = FakeController(sim)
        pipeline = InstallPipeline(controller, timeout_s=0.05)
        pipeline.install(rule(), buffer_id=1234)
        sim.run(0.2)
        assert len(controller.flow_mods) >= 2
        assert all(m["buffer_id"] == 1234 for m in controller.flow_mods)


class TestAbort:
    def test_abort_drops_open_and_pending_batches(self, sim):
        controller = FakeController(sim)
        pipeline = InstallPipeline(controller, timeout_s=0.05)
        pipeline.install(rule())
        sim.run(0.0)  # first batch now in flight
        pipeline.install(rule(tp_dst=443))  # second batch still open
        pipeline.abort_datapath(1)
        assert pipeline.pending_rules() == 0
        flow_mods_before = len(controller.flow_mods)
        sim.run(1.0)  # no timer fires, nothing re-sent
        assert len(controller.flow_mods) == flow_mods_before
        assert len(barriers(controller)) == 1

    def test_departed_datapath_fails_instead_of_retrying(self, sim):
        controller = FakeController(sim)
        pipeline = InstallPipeline(
            controller, timeout_s=0.05, metrics=MetricsRegistry()
        )
        pipeline.install(rule())
        sim.run(0.0)
        del controller.switches[1]
        sim.run(0.1)
        assert pipeline.install_failures.value == 1
        assert pipeline.install_retries.value == 0


class TestIntegration:
    def test_steering_batches_session_installs(self, steering_net):
        """A real session setup coalesces each datapath's FlowMods
        under one barrier: strictly fewer barriers than FlowMods."""
        from repro.workloads import HttpFlow

        net = steering_net
        flow = HttpFlow(net.sim, net.host("h1_1"), "10.255.255.254",
                        rate_bps=4e6, duration_s=1.0)
        flow.start()
        net.run(2.0)
        pipeline = net.controller.install_pipeline
        assert pipeline.batching
        assert pipeline.flowmods_sent.value > 0
        assert 0 < pipeline.barriers_sent.value < pipeline.flowmods_sent.value
        assert net.controller.counters["flows_installed"] >= 1
