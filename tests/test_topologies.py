"""Unit tests for topology builders and address allocation."""

import pytest

from repro.net.topologies import (
    AddressAllocator,
    Topology,
    fit_building,
    linear,
    star,
)


class TestAllocator:
    def test_sequential_unique_addresses(self):
        allocator = AddressAllocator()
        first = allocator.host_addresses()
        second = allocator.host_addresses()
        assert first != second
        assert first == ("00:00:00:00:00:01", "10.0.0.1")
        assert second == ("00:00:00:00:00:02", "10.0.0.2")


class TestLinear:
    def test_shape(self, sim):
        topo = linear(sim, num_as=3, hosts_per_as=2)
        assert len(topo.legacy) == 1
        assert len(topo.as_switches) == 3
        # 6 hosts + gateway
        assert len(topo.hosts) == 7
        assert topo.gateway is not None
        assert topo.gateway.ip == "10.255.255.254"

    def test_attachments_recorded(self, sim):
        topo = linear(sim, num_as=2, hosts_per_as=1)
        attachment = topo.attachments["h1_1"]
        assert attachment.switch is topo.as_switches[0]

    def test_without_gateway(self, sim):
        topo = linear(sim, num_as=2, hosts_per_as=1, with_gateway=False)
        assert topo.gateway is None

    def test_duplicate_dpid_rejected(self, sim):
        topo = Topology(sim)
        topo.add_as_switch("a", dpid=1)
        with pytest.raises(ValueError):
            topo.add_as_switch("b", dpid=1)
        with pytest.raises(ValueError):
            topo.add_ap("c", dpid=1)

    def test_host_by_name_raises_on_unknown(self, sim):
        topo = linear(sim)
        with pytest.raises(KeyError):
            topo.host_by_name("nope")


class TestStar:
    def test_redundant_core_dual_homes(self, sim):
        topo = star(sim, num_as=3, hosts_per_as=1, redundant_core=True)
        assert len(topo.legacy) == 2
        for ovs in topo.as_switches:
            uplinks = [p for p in ovs.attached_ports()
                       if p.peer().node in topo.legacy]
            assert len(uplinks) == 2

    def test_single_core(self, sim):
        topo = star(sim, num_as=3, hosts_per_as=1, redundant_core=False)
        assert len(topo.legacy) == 1


class TestFitBuilding:
    def test_paper_scale_shape(self, sim):
        topo = fit_building(sim)
        assert len(topo.as_switches) == 10
        assert len(topo.aps) == 20
        wired = [h for h in topo.hosts if not h.wireless and h is not topo.gateway]
        wireless = [h for h in topo.hosts if h.wireless]
        assert len(wired) == 20
        assert len(wireless) == 30
        assert len(topo.all_openflow_switches()) == 30

    def test_wireless_users_attach_to_aps(self, sim):
        topo = fit_building(sim, num_ovs=2, num_aps=2, wired_users=0,
                            wireless_users=4)
        for host in topo.hosts:
            if host.wireless:
                attachment = topo.attachments[host.name]
                assert attachment.switch in topo.aps

    def test_ap_dpids_disjoint_from_ovs(self, sim):
        topo = fit_building(sim, num_ovs=3, num_aps=3, wired_users=0,
                            wireless_users=0)
        ovs_dpids = {s.dpid for s in topo.as_switches}
        ap_dpids = {a.dpid for a in topo.aps}
        assert not (ovs_dpids & ap_dpids)
