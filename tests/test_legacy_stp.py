"""Unit tests for the legacy learning switch and spanning tree."""


from repro.net import packet as pkt
from repro.net.legacy import LegacySwitch
from repro.net.host import Host
from repro.net.node import connect


def make_host(sim, index):
    return Host(sim, f"h{index}", pkt.mac_address(index), pkt.ip_address(index))


class TestLearning:
    def test_unknown_destination_floods(self, sim):
        switch = LegacySwitch(sim, "s", bridge_id=1, stp_enabled=False)
        hosts = [make_host(sim, i) for i in (1, 2, 3)]
        for host in hosts:
            connect(sim, switch, host)
        frame = pkt.make_udp(hosts[0].mac, hosts[1].mac,
                             hosts[0].ip, hosts[1].ip, 1, 2)
        hosts[0].send(frame, 1)
        sim.run()
        assert hosts[1].rx_frames == 1
        # Host 3 received a copy on the wire (flood) but its IP stack
        # dropped it (not addressed to it).
        assert hosts[2].port(1).rx_packets == 1
        assert hosts[2].rx_frames == 0

    def test_learned_destination_unicasts(self, sim):
        switch = LegacySwitch(sim, "s", bridge_id=1, stp_enabled=False)
        hosts = [make_host(sim, i) for i in (1, 2, 3)]
        for host in hosts:
            connect(sim, switch, host)
        # Teach the switch where host 2 is.
        hosts[1].announce()
        sim.run()
        frame = pkt.make_udp(hosts[0].mac, hosts[1].mac,
                             hosts[0].ip, hosts[1].ip, 1, 2)
        hosts[0].send(frame, 1)
        sim.run()
        rx_before_host3 = hosts[2].port(1).rx_packets
        assert hosts[1].rx_frames == 1
        # No new flood copy for host 3 beyond the earlier announce.
        assert hosts[2].port(1).rx_packets == rx_before_host3

    def test_two_switch_forwarding(self, sim):
        s1 = LegacySwitch(sim, "s1", bridge_id=1)
        s2 = LegacySwitch(sim, "s2", bridge_id=2)
        connect(sim, s1, s2)
        h1, h2 = make_host(sim, 1), make_host(sim, 2)
        connect(sim, s1, h1)
        connect(sim, s2, h2)
        sim.run(until=0.5)  # STP settle
        h1.send_udp(h2.ip, 1, 2)
        sim.run(until=1.0)
        assert h2.rx_frames == 1


class TestSpanningTree:
    def _triangle(self, sim):
        switches = [LegacySwitch(sim, f"s{i}", bridge_id=i) for i in (1, 2, 3)]
        connect(sim, switches[0], switches[1])
        connect(sim, switches[1], switches[2])
        connect(sim, switches[2], switches[0])
        return switches

    def test_root_election_lowest_bridge_id(self, sim):
        switches = self._triangle(sim)
        sim.run(until=1.0)
        for switch in switches:
            assert switch.spanning_tree_state()["root_id"] == 1

    def test_exactly_one_blocked_port_in_triangle(self, sim):
        switches = self._triangle(sim)
        sim.run(until=1.0)
        blocked = [
            (switch.name, port)
            for switch in switches
            for port, role in switch.spanning_tree_state()["roles"].items()
            if role == "blocked"
        ]
        assert len(blocked) == 1

    def test_broadcast_does_not_loop(self, sim):
        switches = self._triangle(sim)
        hosts = []
        for index, switch in enumerate(switches, start=1):
            host = make_host(sim, index)
            connect(sim, switch, host)
            hosts.append(host)
        sim.run(until=1.0)
        arp_copies = {"h2": 0, "h3": 0}
        for host in hosts[1:]:
            def spy(frame, in_port, host=host, original=host.receive):
                if frame.ethertype == pkt.ETH_TYPE_ARP:
                    arp_copies[host.name] += 1
                original(frame, in_port)
            host.receive = spy
        hosts[0].announce()
        sim.run(until=2.0)
        # Each other host sees the broadcast exactly once; a loop
        # would melt the event queue long before this assertion.
        assert arp_copies == {"h2": 1, "h3": 1}

    def test_failover_unblocks_redundant_path(self, sim):
        switches = self._triangle(sim)
        hosts = []
        for index, switch in enumerate(switches, start=1):
            host = make_host(sim, index)
            connect(sim, switch, host)
            hosts.append(host)
        sim.run(until=1.0)
        # Break the s1-s2 link; STP must re-converge via s3.
        link = switches[0].port(1).link
        link.set_up(False)
        sim.run(until=3.0)
        hosts[0].send_udp(hosts[1].ip, 1, 2)
        sim.run(until=4.0)
        assert hosts[1].rx_frames == 1

    def test_edge_ports_forward(self, sim):
        switch = LegacySwitch(sim, "s", bridge_id=5)
        host = make_host(sim, 1)
        connect(sim, switch, host)
        sim.run(until=0.5)
        assert switch.port_is_forwarding(1)


class TestLldpFlooding:
    def test_lldp_flooded_by_default(self, sim):
        switch = LegacySwitch(sim, "s", bridge_id=1, stp_enabled=False)
        sinks = [make_host(sim, i) for i in (1, 2)]
        for sink in sinks:
            connect(sim, switch, sink)
        switch.receive(pkt.make_lldp(9, 1), in_port=1)
        sim.run()
        assert sinks[1].port(1).rx_packets == 1

    def test_lldp_suppressed_when_disabled(self, sim):
        switch = LegacySwitch(sim, "s", bridge_id=1, stp_enabled=False,
                              flood_lldp=False)
        sinks = [make_host(sim, i) for i in (1, 2)]
        for sink in sinks:
            connect(sim, switch, sink)
        switch.receive(pkt.make_lldp(9, 1), in_port=1)
        sim.run()
        assert sinks[1].port(1).rx_packets == 0

    def test_bpdus_consumed_not_forwarded(self, sim):
        from repro.net.legacy import Bpdu, ETH_TYPE_BPDU
        from repro.net.packet import Ethernet

        # STP disabled so the switch emits no hellos of its own; an
        # injected BPDU must still be consumed, never re-flooded.
        switch = LegacySwitch(sim, "s", bridge_id=1, stp_enabled=False)
        h1, h2 = make_host(sim, 1), make_host(sim, 2)
        connect(sim, switch, h1, port_a=1)
        connect(sim, switch, h2, port_a=2)
        bpdu = Ethernet(src="02:00:00:00:00:09", dst="01:80:c2:00:00:00",
                        ethertype=ETH_TYPE_BPDU, size=64)
        bpdu.payload = Bpdu(root_id=9, root_cost=0, bridge_id=9, port_id=1)
        before = h2.port(1).rx_packets
        switch.receive(bpdu, in_port=1)
        sim.run(until=0.01)
        # Consumed by the bridge, never re-flooded to other ports.
        assert h2.port(1).rx_packets == before
