"""End-to-end scenario tests crossing all subsystems."""


from repro import Policy, PolicyTable, build_livesec_network
from repro.core.events import EventKind
from repro.core.policy import FlowSelector, Granularity, PolicyAction
from repro.core.visualization import render_snapshot
from repro.workloads import (
    AttackWebFlow,
    BitTorrentFlow,
    HttpFlow,
    VirusDownloadFlow,
)
from repro.workloads.users import UserBehavior

GATEWAY_IP = "10.255.255.254"


def chain_policies(*chain, granularity=Granularity.FLOW):
    table = PolicyTable()
    table.add(Policy(
        name="chain",
        selector=FlowSelector(dst_ip=GATEWAY_IP),
        action=PolicyAction.CHAIN,
        service_chain=tuple(chain),
        granularity=granularity,
    ))
    return table


class TestServiceChains:
    def test_two_element_chain_traverses_both(self):
        net = build_livesec_network(
            topology="linear", policies=chain_policies("l7", "ids"),
            elements=[("ids", 1), ("l7", 1)], num_as=3, hosts_per_as=1,
        )
        net.start()
        flow = HttpFlow(net.sim, net.host("h1_1"), GATEWAY_IP,
                        rate_bps=4e6, duration_s=2.0)
        flow.start()
        net.run(3.0)
        assert flow.delivered_bytes(net.gateway) > 0
        for element in net.elements:
            assert element.processed_packets > 0, element.name

    def test_l7_identifies_application_for_monitoring(self):
        net = build_livesec_network(
            topology="linear", policies=chain_policies("l7"),
            elements=[("l7", 1)], num_as=2, hosts_per_as=1,
        )
        net.start()
        BitTorrentFlow(net.sim, net.host("h1_1"), GATEWAY_IP,
                       rate_bps=4e6, duration_s=2.0).start()
        net.run(3.0)
        identified = net.controller.log.query(
            kind=EventKind.PROTOCOL_IDENTIFIED)
        assert any(e.data["application"] == "bittorrent" for e in identified)
        snap = net.monitoring.snapshot()
        user = snap.users[net.host("h1_1").mac]
        assert "bittorrent" in user.applications

    def test_virus_chain_blocks_download(self):
        net = build_livesec_network(
            topology="linear", policies=chain_policies("virus"),
            elements=[("virus", 1)], num_as=3, hosts_per_as=1,
        )
        net.start()
        flow = VirusDownloadFlow(net.sim, net.host("h1_1"), GATEWAY_IP,
                                 rate_bps=2e6, infected_packet=4,
                                 duration_s=4.0)
        flow.start()
        net.run(6.0)
        blocks = net.controller.log.query(kind=EventKind.FLOW_BLOCKED)
        assert blocks
        delivered_at_block = flow.delivered_bytes(net.gateway)
        net.run(2.0)
        assert flow.delivered_bytes(net.gateway) == delivered_at_block


class TestEastWestCoverage:
    def test_internal_traffic_inspected(self):
        """Full-mesh security: host-to-host flows are chained too."""
        policies = PolicyTable()
        policies.add(Policy(
            name="east-west",
            selector=FlowSelector(src_ip_prefix="10.0.",
                                  dst_ip_prefix="10.0."),
            action=PolicyAction.CHAIN,
            service_chain=("ids",),
        ))
        net = build_livesec_network(
            topology="star", policies=policies, elements=[("ids", 1)],
            num_as=3, hosts_per_as=1,
        )
        net.start()
        h1, h3 = net.host("h1_1"), net.host("h3_1")
        flow = HttpFlow(net.sim, h1, h3.ip, rate_bps=4e6, duration_s=1.5)
        flow.start()
        net.run(3.0)
        assert flow.delivered_bytes(h3) > 0
        assert net.elements[0].processed_packets > 0

    def test_attacker_blocked_before_crossing_fabric(self):
        policies = PolicyTable()
        policies.add(Policy(
            name="east-west",
            selector=FlowSelector(src_ip_prefix="10.0.",
                                  dst_ip_prefix="10.0."),
            action=PolicyAction.CHAIN,
            service_chain=("ids",),
        ))
        net = build_livesec_network(
            topology="star", policies=policies, elements=[("ids", 1)],
            num_as=3, hosts_per_as=1,
        )
        net.start()
        victim = net.host("h3_1")
        attack = AttackWebFlow(net.sim, net.host("h1_1"), victim.ip,
                               rate_bps=2e6, duration_s=5.0)
        attack.start()
        net.run(2.0)
        at_block = attack.delivered_bytes(victim)
        net.run(3.0)
        leaked = attack.delivered_bytes(victim) - at_block
        assert net.controller.counters["flows_blocked"] >= 1
        assert leaked == 0


class TestUserGranularitySessions:
    def test_users_pinned_to_one_element(self):
        net = build_livesec_network(
            topology="linear",
            policies=chain_policies("ids", granularity=Granularity.USER),
            elements=[("ids", 3)], num_as=4, hosts_per_as=1,
        )
        net.start()
        host = net.host("h4_1")
        for index in range(3):
            HttpFlow(net.sim, host, GATEWAY_IP, rate_bps=2e6,
                     duration_s=2.0, sport=30000 + index).start()
        net.run(3.0)
        used = [e for e in net.elements if e.processed_packets > 0]
        assert len(used) == 1, "user-grain must pin all flows to one element"


class TestVmMigration:
    def test_element_location_follows_migration(self):
        """Moving a VM-based element to another switch re-learns its
        location from its next online message (Section III.D.1)."""
        net = build_livesec_network(
            topology="linear", policies=chain_policies("ids"),
            elements=[("ids", 1)], num_as=3, hosts_per_as=1,
        )
        net.start()
        element = net.elements[0]
        record = net.controller.nib.host_by_mac(element.mac)
        old_dpid = record.dpid
        # Unplug and rewire on another switch (live migration).
        old_port = element.port(1)
        old_link = old_port.link
        old_switch_port = old_link.other_end(old_port)
        old_link.set_up(False)
        old_port.link = None
        old_switch_port.link = None
        from repro.net.node import connect

        target = next(s for s in net.topology.as_switches
                      if s.dpid != old_dpid)
        connect(net.sim, target, element, bandwidth_bps=1e9, delay_s=5e-6,
                port_b=1)
        net.run(2.0)
        record = net.controller.nib.host_by_mac(element.mac)
        assert record.dpid == target.dpid
        # And steering still works end to end.
        flow = HttpFlow(net.sim, net.host("h2_1"), GATEWAY_IP,
                        rate_bps=2e6, duration_s=1.5)
        flow.start()
        net.run(3.0)
        assert flow.delivered_bytes(net.gateway) > 0


class TestChurnScenario:
    def test_users_join_leave_with_monitoring(self):
        net = build_livesec_network(
            topology="linear", num_as=2, hosts_per_as=2,
            host_timeout_s=4.0,
        )
        net.start()
        user = UserBehavior(net.sim, net.host("h1_1"), GATEWAY_IP,
                            profile="web", rate_bps=1e6)
        user.join()
        net.run(3.0)
        assert net.monitoring.snapshot().users[user.host.mac].online
        user.leave()
        net.run(15.0)
        assert not net.monitoring.snapshot().users[user.host.mac].online
        leaves = net.controller.log.query(kind=EventKind.HOST_LEAVE)
        assert any(e.data["mac"] == user.host.mac for e in leaves)

    def test_render_runs_on_live_network(self, steering_net):
        HttpFlow(steering_net.sim, steering_net.host("h1_1"), GATEWAY_IP,
                 rate_bps=2e6, duration_s=1.0).start()
        steering_net.run(2.0)
        text = render_snapshot(steering_net.monitoring.snapshot())
        assert "service elements: 2" in text
