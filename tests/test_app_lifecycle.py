"""Tests for the runtime app lifecycle (the operations control plane).

Covers transactional registration (a failed ``add_app`` leaves zero
residual subscriptions or timers), stop/start/restart/reload with the
config-hash no-op skip, the crash watchdog with TTD/TTR scoring via
the ``app_crash`` fault, steering's drain of accountability-decorated
sessions, per-shard lifecycle visibility, and the determinism
contract: a mid-scenario stop -> reload -> start of the observation-only
monitor app does not perturb the data path.
"""

import pytest

from repro.core.apps.base import (
    APP_CRASHED,
    APP_RUNNING,
    APP_STOPPED,
    App,
    ServiceStatus,
    config_hash,
)
from repro.core.bus import AppLifecycleChanged, DataPacketIn
from repro.core.deployment import build_livesec_network
from repro.core.events import EventKind
from repro.faults import FaultInjector, FaultPlan, FaultTargetError
from repro.faults.scenarios import GATEWAY_IP, chaos_policy_table
from repro.workloads import CbrUdpFlow


def build_net(num_elements=2, accountability=False, stats_interval_s=1.0):
    return build_livesec_network(
        topology="linear",
        policies=chaos_policy_table("open"),
        elements=[("ids", num_elements)],
        num_as=2,
        hosts_per_as=1,
        element_timeout_s=1.5,
        dispatcher="polling",
        accountability=accountability,
        stats_interval_s=stats_interval_s,
    )


def start_traffic(net, duration_s):
    hosts = [h for h in net.topology.hosts if h is not net.topology.gateway]
    for host in hosts:
        CbrUdpFlow(net.sim, host, GATEWAY_IP,
                   rate_bps=2e6, duration_s=duration_s).start()


class TickApp(App):
    """A tiny app with one subscription and one periodic timer."""

    name = "tick"

    def __init__(self, ctx):
        super().__init__(ctx)
        self.ticks = 0
        self.packets = 0
        self.listen(DataPacketIn, self.on_packet)

    def on_packet(self, event):
        self.packets += 1

    def start(self):
        self.every(0.25, self._tick)

    def _tick(self):
        self.ticks += 1


class DuplicateSteering(App):
    """Constructor wires subscriptions under an already-taken name."""

    name = "steering"

    def __init__(self, ctx):
        super().__init__(ctx)
        self.listen(DataPacketIn, self.on_packet)

    def on_packet(self, event):
        raise AssertionError("a rolled-back app must never dispatch")


class ExplodingCtor(App):
    name = "exploding-ctor"

    def __init__(self, ctx):
        super().__init__(ctx)
        self.listen(DataPacketIn, self.on_packet)
        raise RuntimeError("constructor dies after wiring")

    def on_packet(self, event):
        raise AssertionError("a purged app must never dispatch")


class ExplodingStart(App):
    name = "exploding-start"

    def __init__(self, ctx):
        super().__init__(ctx)
        self.ran = 0
        self.listen(DataPacketIn, self.on_packet)

    def on_packet(self, event):
        raise AssertionError("a rolled-back app must never dispatch")

    def start(self):
        self.every(0.25, self._tick)
        raise RuntimeError("start dies after registering a timer")

    def _tick(self):
        self.ran += 1


class TestTransactionalAddApp:
    def test_duplicate_name_leaves_bus_unchanged(self):
        net = build_net()
        net.start()
        controller = net.controller
        before = len(controller.bus.subscriptions())
        original = controller.app("steering")
        with pytest.raises(ValueError, match="already registered"):
            controller.add_app(DuplicateSteering)
        # The regression: the constructed duplicate's subscriptions
        # must not leak onto the bus, and the original keeps its slot.
        assert len(controller.bus.subscriptions()) == before
        assert controller.app("steering") is original
        net.run(1.0)  # the duplicate's handler would raise if wired

    def test_constructor_failure_purges_partial_wiring(self):
        net = build_net()
        net.start()
        controller = net.controller
        before = len(controller.bus.subscriptions())
        with pytest.raises(RuntimeError, match="constructor dies"):
            controller.add_app(ExplodingCtor)
        assert len(controller.bus.subscriptions()) == before
        assert "exploding-ctor" not in controller._apps
        net.run(0.5)

    def test_start_failure_rolls_back_subscriptions_and_timers(self):
        net = build_net()
        net.start()
        controller = net.controller
        before = len(controller.bus.subscriptions())
        with pytest.raises(RuntimeError, match="start dies"):
            controller.add_app(ExplodingStart)
        assert len(controller.bus.subscriptions()) == before
        assert "exploding-start" not in controller._apps
        # The timer registered before start() raised was cancelled:
        # running the clock fires nothing (the tick would mutate the
        # instance, which add_app never returned -- run proves no
        # periodic callback survived in the queue by not raising via
        # the subscription either).
        net.run(1.0)

    def test_successful_add_app_emits_started(self):
        net = build_net()
        net.start()
        app = net.controller.add_app(TickApp)
        assert app.state == APP_RUNNING
        records = net.controller.log.query(kind=EventKind.APP_LIFECYCLE)
        assert [r.data["action"] for r in records] == ["started"]
        assert records[-1].data["app"] == "tick"


class TestStopAndTimers:
    def test_stop_removes_subscriptions_and_cancels_timers(self):
        net = build_net()
        net.start()
        controller = net.controller
        app = controller.add_app(TickApp)
        handle = app._timers[0]
        net.run(1.0)
        assert app.ticks > 0
        ticks_at_stop = app.ticks
        controller.stop_app("tick")
        assert app.state == APP_STOPPED
        assert handle.cancelled
        assert not any(
            sub.app == "tick" for sub in controller.bus.subscriptions()
        )
        start_traffic(net, 1.0)
        net.run(2.0)
        # A stopped app never fires a late periodic callback and never
        # sees another event.
        assert app.ticks == ticks_at_stop
        assert app.packets == 0

    def test_stop_cancels_accountability_absence_audit(self):
        # Regression for the satellite: the accountability app's 0.5 s
        # absence-audit timer must die with the app.
        net = build_net(accountability=True)
        net.start()
        controller = net.controller
        acct = controller.app("accountability")
        assert len(acct._timers) == 1
        handle = acct._timers[0]
        assert not handle.cancelled
        controller.stop_app("accountability")
        assert handle.cancelled
        assert acct._timers == []
        assert not any(
            sub.app == "accountability"
            for sub in controller.bus.subscriptions()
        )
        net.run(2.0)  # no late audit fires

    def test_stop_is_idempotent_and_start_revives(self):
        net = build_net()
        net.start()
        controller = net.controller
        controller.stop_app("monitor")
        controller.stop_app("monitor")  # no-op
        assert controller.app("monitor").state == APP_STOPPED
        revived = controller.start_app("monitor")
        assert revived.state == APP_RUNNING
        assert controller.app("monitor") is revived
        assert any(
            sub.app == "monitor" for sub in controller.bus.subscriptions()
        )


class TestReload:
    def test_noop_reload_skipped_by_config_hash(self):
        net = build_net()
        net.start()
        controller = net.controller
        app = controller.app("monitor")
        records_before = len(
            controller.log.query(kind=EventKind.APP_LIFECYCLE)
        )
        same = controller.reload_app("monitor", dict(app.config))
        assert same is app  # not reconstructed
        assert len(
            controller.log.query(kind=EventKind.APP_LIFECYCLE)
        ) == records_before

    def test_changed_config_reload_reconstructs(self):
        net = build_net(stats_interval_s=1.0)
        net.start()
        controller = net.controller
        old = controller.app("monitor")
        old_handle = old._timers[0]
        seen = []
        controller.bus.subscribe(
            AppLifecycleChanged, seen.append, app="test"
        )
        new = controller.reload_app("monitor", {"stats_interval_s": 0.25})
        assert new is not old
        assert new.state == APP_RUNNING
        assert new.config == {"stats_interval_s": 0.25}
        assert old_handle.cancelled
        assert [e.action for e in seen] == ["reloaded"]
        assert isinstance(seen[0].status, ServiceStatus)
        records = controller.log.query(kind=EventKind.APP_LIFECYCLE)
        assert records[-1].data["action"] == "reloaded"

    def test_bad_config_reload_rolls_back_to_old_config(self):
        net = build_net()
        net.start()
        controller = net.controller
        subs_before = len(controller.bus.subscriptions())
        old_config = dict(controller.app("monitor").config)
        with pytest.raises(TypeError):
            controller.reload_app("monitor", {"bogus_knob": 1})
        app = controller.app("monitor")
        assert app.state == APP_RUNNING
        assert app.config == old_config
        assert len(controller.bus.subscriptions()) == subs_before

    def test_restart_keeps_config(self):
        net = build_net(stats_interval_s=0.5)
        net.start()
        controller = net.controller
        old = controller.app("monitor")
        new = controller.restart_app("monitor")
        assert new is not old
        assert new.config == old.config
        assert new.state == APP_RUNNING
        assert old.state == APP_STOPPED

    def test_remove_app_drops_registry_slot(self):
        net = build_net()
        net.start()
        controller = net.controller
        controller.add_app(TickApp)
        controller.remove_app("tick")
        assert "tick" not in controller._apps
        records = controller.log.query(kind=EventKind.APP_LIFECYCLE)
        assert records[-1].data["action"] == "removed"
        assert records[-1].data["state"] == "removed"


class TestWatchdog:
    def test_crash_is_silent_until_watchdog_detects(self):
        net = build_net()
        net.start()
        controller = net.controller
        controller.crash_app("monitor")
        assert controller.app("monitor").state == APP_CRASHED
        assert controller.log.query(kind=EventKind.APP_LIFECYCLE) == []
        controller.start_app_watchdog()
        net.run(0.6)
        records = controller.log.query(kind=EventKind.APP_LIFECYCLE)
        assert [r.data["action"] for r in records] == [
            "crash-detected", "restarted",
        ]
        assert controller.app("monitor").state == APP_RUNNING

    def test_watchdog_is_idempotent(self):
        net = build_net()
        net.start()
        first = net.controller.start_app_watchdog()
        assert net.controller.start_app_watchdog() is first


class TestAppCrashFault:
    def test_app_crash_on_steering_scores_ttd_and_ttr(self):
        # 2.1 s sits between watchdog scan ticks (0.5 s grid), so the
        # detection latency is a real, positive fraction of a scan.
        plan = FaultPlan(seed=3).app_crash(2.1, "steering")
        net = build_net()
        injector = FaultInjector(net, plan)
        injector.arm()
        net.start()
        start_traffic(net, 4.0)
        net.run(5.0)
        summary = injector.summary()
        assert summary["injected"]["app-crash"] == 1
        latency = injector.per_fault_latency()["app-crash"]
        assert latency["time_to_detect_s"]["count"] == 1
        assert latency["time_to_recover_s"]["count"] == 1
        # The watchdog scans every 0.5 s: detection within one period,
        # and strictly after the (off-grid) crash instant.
        assert 0.0 < latency["time_to_detect_s"]["max"] <= 0.5 + 1e-9
        assert net.controller.app("steering").state == APP_RUNNING
        crashes = [
            e for e in net.controller.log.query(kind=EventKind.FAULT_INJECTED)
            if e.data.get("fault") == "app-crash"
        ]
        assert len(crashes) == 1
        # The revived steering still forms sessions: let the first
        # wave idle out, then send fresh traffic.
        net.run(5.0)
        start_traffic(net, 1.0)
        net.run(2.0)
        opens_after = net.controller.log.query(
            kind=EventKind.FLOW_START, since=crashes[0].time + 1.0,
        )
        assert opens_after  # steering came back and kept steering

    def test_unknown_app_rejected_at_arm_time(self):
        plan = FaultPlan().app_crash(1.0, "no-such-app")
        net = build_net()
        injector = FaultInjector(net, plan)
        with pytest.raises(FaultTargetError, match="no app named"):
            injector.arm()

    def test_plan_builder_validates(self):
        with pytest.raises(ValueError, match="non-empty"):
            FaultPlan().app_crash(1.0, "")
        with pytest.raises(ValueError, match="shard id"):
            FaultPlan().app_crash(1.0, "monitor", shard=-1)


class TestSteeringDrain:
    def test_stopping_accountability_drains_descriptors(self):
        net = build_net(accountability=True)
        net.start()
        start_traffic(net, 6.0)
        net.run(2.0)
        controller = net.controller
        decorated = [
            s for s in controller.sessions if s.path_descriptor is not None
        ]
        assert decorated  # accountability armed the live sessions
        sessions_before = len(controller.sessions)
        controller.stop_app("accountability")
        # Every session lost its proof obligations but kept flowing.
        assert all(
            s.path_descriptor is None for s in controller.sessions
        )
        assert len(controller.sessions) == sessions_before
        assert not controller.accountability_active()
        net.run(1.0)
        assert len(controller.sessions) >= sessions_before

    def test_sessions_after_restart_are_decorated_again(self):
        net = build_net(accountability=True)
        net.start()
        start_traffic(net, 3.0)
        net.run(1.0)
        controller = net.controller
        controller.stop_app("accountability")
        assert not controller.accountability_active()
        controller.start_app("accountability")
        assert controller.accountability_active()
        # Drained sessions stay undecorated (the fresh app never armed
        # them); the gate is simply open again for new sessions.
        assert all(
            s.path_descriptor is None for s in controller.sessions
        )


class TestShardLifecycle:
    def test_coordinator_status_shows_per_shard_apps(self):
        from repro.core.deployment import build_sharded_network

        net = build_sharded_network(
            num_shards=2, topology="linear", num_as=3, hosts_per_as=1,
        )
        net.start()
        member = net.coordinator.member(0)
        member.controller.stop_app("monitor")
        status = net.coordinator.status()
        apps0 = status["shards"][0]["apps"]
        apps1 = status["shards"][1]["apps"]
        assert apps0["monitor"] == APP_STOPPED
        assert apps1["monitor"] == APP_RUNNING
        assert apps0["steering"] == APP_RUNNING


class TestTypedContracts:
    def test_service_status_shape(self):
        net = build_net(stats_interval_s=0.5)
        net.start()
        statuses = net.controller.app_status()
        monitor = statuses["monitor"]
        assert isinstance(monitor, ServiceStatus)
        assert monitor.state == APP_RUNNING
        assert monitor.timers == 1
        assert monitor.subscriptions > 0
        assert monitor.config == {"stats_interval_s": 0.5}
        assert monitor.config_hash == config_hash(monitor.config)
        as_dict = monitor.to_dict()
        assert as_dict["name"] == "monitor"
        assert as_dict["state"] == APP_RUNNING

    def test_config_hash_is_canonical(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})
        assert config_hash({"a": 1}) != config_hash({"a": 2})

    def test_session_snapshot(self):
        net = build_net()
        net.start()
        start_traffic(net, 2.0)
        net.run(1.0)
        snapshots = net.controller.sessions.snapshot()
        assert snapshots
        ids = [snap.session_id for snap in snapshots]
        assert ids == sorted(ids)
        first = snapshots[0]
        with pytest.raises(Exception):
            first.session_id = 99  # frozen
        as_dict = first.to_dict()
        assert as_dict["session_id"] == first.session_id
        assert isinstance(as_dict["element_macs"], list)


class TestDigestStability:
    def _run_log(self, cycle):
        net = build_net(stats_interval_s=1.0)
        net.start()
        start_traffic(net, 4.0)
        net.run(1.5)
        if cycle:
            controller = net.controller
            controller.stop_app("monitor")
            net.run(0.5)
            controller.reload_app("monitor", {"stats_interval_s": 0.5})
            net.run(0.5)
            controller.restart_app("monitor")
            net.run(2.5)
        else:
            net.run(3.5)
        return net.controller.log

    def test_same_seed_cycled_runs_digest_equal(self):
        assert self._run_log(cycle=True).digest() == \
            self._run_log(cycle=True).digest()

    def test_monitor_cycle_does_not_perturb_data_path(self):
        # The monitor is observation-only: stop -> reload -> start must
        # leave every non-observation event identical to an untouched
        # run.  Excluded: its own load samples (cadence changed with
        # the reload) and the lifecycle records of the cycle itself.
        exclude = {EventKind.LINK_LOAD, EventKind.ELEMENT_LOAD,
                   EventKind.APP_LIFECYCLE}
        cycled = self._run_log(cycle=True).digest(exclude_kinds=exclude)
        plain = self._run_log(cycle=False).digest(exclude_kinds=exclude)
        assert cycled == plain
