"""Tests for the session journal (repro.core.journal).

The journal folds the session-lifecycle kinds of the segmented event
log -- flow start/steer/block/failover, handoff, flow end -- into an
append-only per-session ledger with a stable digest.  A journal
attached live to a running deployment and a journal replayed from the
saved JSONL log must agree record for record.
"""


from repro.core.deployment import build_livesec_network
from repro.core.events import EventKind, NetworkEvent
from repro.core.journal import (
    JOURNAL_ACTIONS,
    JournalRecord,
    SessionJournal,
)
from repro.faults.scenarios import GATEWAY_IP, chaos_policy_table
from repro.workloads import CbrUdpFlow


def build_net(**kwargs):
    kwargs.setdefault("num_as", 2)
    kwargs.setdefault("hosts_per_as", 1)
    return build_livesec_network(
        topology="linear",
        policies=chaos_policy_table("open"),
        elements=[("ids", 2)],
        element_timeout_s=1.5,
        dispatcher="polling",
        **kwargs,
    )


def run_with_traffic(net, duration_s=2.0, settle_s=7.0):
    net.start()
    hosts = [h for h in net.topology.hosts if h is not net.topology.gateway]
    for host in hosts:
        CbrUdpFlow(net.sim, host, GATEWAY_IP,
                   rate_bps=2e6, duration_s=duration_s).start()
    net.run(duration_s + settle_s)  # let idle timeout close the sessions


class TestObserve:
    def test_ignores_non_session_kinds(self):
        journal = SessionJournal()
        journal.observe(NetworkEvent(1.0, EventKind.LINK_LOAD,
                                     {"bps": 1e6}))
        journal.observe(NetworkEvent(1.0, EventKind.APP_LIFECYCLE,
                                     {"app": "monitor",
                                      "action": "stopped"}))
        assert len(journal) == 0

    def test_ignores_session_kind_without_session_id(self):
        journal = SessionJournal()
        journal.observe(NetworkEvent(1.0, EventKind.FLOW_START, {}))
        assert len(journal) == 0

    def test_folds_kind_into_action(self):
        journal = SessionJournal()
        journal.observe(NetworkEvent(
            1.0, EventKind.FLOW_START, {"session": 4, "policy": "p"}))
        journal.observe(NetworkEvent(
            2.5, EventKind.FLOW_END, {"session": 4, "reason": "idle"}))
        records = journal.records()
        assert [r.action for r in records] == ["open", "close"]
        assert records[0].session == 4
        assert records[0].detail == {"policy": "p"}  # session key lifted
        history = journal.session(4)
        assert history.opened_at == 1.0
        assert history.closed_at == 2.5
        assert not history.open

    def test_action_vocabulary_covers_all_session_kinds(self):
        assert JOURNAL_ACTIONS == {
            EventKind.FLOW_START: "open",
            EventKind.FLOW_STEERED: "steer",
            EventKind.FLOW_BLOCKED: "block",
            EventKind.FLOW_FAILOVER: "failover",
            EventKind.SESSION_HANDOFF: "handoff",
            EventKind.FLOW_END: "close",
        }

    def test_handoff_only_session_has_no_opened_at(self):
        journal = SessionJournal()
        journal.observe(NetworkEvent(
            3.0, EventKind.SESSION_HANDOFF, {"session": 9}))
        history = journal.session(9)
        assert history.opened_at is None
        assert history.closed_at is None
        assert not history.open  # never seen opening: not "still open"


class TestRecord:
    def test_json_line_is_canonical(self):
        record = JournalRecord(
            time=1.5, session=2, action="open", detail={"b": 1, "a": 2})
        line = record.json_line()
        assert line == (
            '{"action":"open","detail":{"a":2,"b":1},'
            '"session":2,"time":1.5}'
        )


class TestLiveAndReplay:
    def test_attach_backfills_existing_log(self):
        net = build_net()
        run_with_traffic(net)
        journal = SessionJournal.attach(net.controller.log)
        assert len(journal) > 0
        summary = journal.summary()
        assert summary["sessions"] >= 2
        assert summary["open"] == summary["sessions"]
        assert summary["close"] == summary["sessions"]
        assert summary["still_open"] == 0

    def test_live_attach_equals_backfill_attach(self):
        net_a = build_net()
        live = SessionJournal.attach(net_a.controller.log)  # before traffic
        run_with_traffic(net_a)

        net_b = build_net()
        run_with_traffic(net_b)
        backfilled = SessionJournal.attach(net_b.controller.log)

        assert live.digest() == backfilled.digest()
        assert len(live) == len(backfilled)

    def test_replay_from_saved_log_matches_live_digest(self, tmp_path):
        net = build_net()
        live = SessionJournal.attach(net.controller.log)
        run_with_traffic(net)
        path = str(tmp_path / "events.jsonl")
        net.controller.log.save(path)
        replayed = SessionJournal.replay(path)
        assert replayed.digest() == live.digest()
        assert [r.json_line() for r in replayed] == \
            [r.json_line() for r in live]

    def test_two_same_seed_runs_share_a_digest(self):
        digests = []
        for _ in range(2):
            net = build_net()
            journal = SessionJournal.attach(net.controller.log)
            run_with_traffic(net)
            digests.append(journal.digest())
        assert digests[0] == digests[1]

    def test_sessions_sorted_and_lookup(self):
        net = build_net()
        run_with_traffic(net)
        journal = SessionJournal.attach(net.controller.log)
        histories = journal.sessions()
        ids = [h.session_id for h in histories]
        assert ids == sorted(ids)
        assert journal.session(ids[0]) is histories[0]
        assert journal.session(10**9) is None
        assert "open" in histories[0].actions()
