"""Tests for the NOX-style app decomposition of the controller."""

import pytest

from repro import Policy, PolicyTable, build_livesec_network
from repro.core.bus import HostMoved, LinkTimedOut, UplinksLost
from repro.core.events import EventKind
from repro.core.policy import (
    FailMode,
    FlowSelector,
    Granularity,
    PolicyAction,
)
from repro.net.packet import FlowNineTuple
from repro.workloads import HttpFlow

GATEWAY_IP = "10.255.255.254"

APP_NAMES = [
    "host-tracker",
    "topology",
    "service-directory",
    "policy-engine",
    "steering",
    "monitor",
]


def http_nine(src_mac, src_ip, sport=40000):
    return FlowNineTuple(
        vlan=None, dl_src=src_mac, dl_dst="gw", dl_type=0x0800,
        nw_src=src_ip, nw_dst=GATEWAY_IP, nw_proto=6,
        tp_src=sport, tp_dst=80,
    )


class TestComposition:
    def test_six_apps_in_fixed_order(self, small_net):
        assert [a.name for a in small_net.controller.apps] == APP_NAMES

    def test_app_lookup_by_name(self, small_net):
        for name in APP_NAMES:
            assert small_net.controller.app(name).name == name
        with pytest.raises(KeyError):
            small_net.controller.app("nope")

    def test_describe_is_json_friendly(self, small_net):
        import json

        for app in small_net.controller.apps:
            description = app.describe()
            json.dumps(description)  # must not raise
            assert description["name"] == app.name
            assert description["summary"]

    def test_event_counters_track_dispatch(self, steering_net):
        net = steering_net
        HttpFlow(net.sim, net.host("h1_1"), GATEWAY_IP,
                 rate_bps=4e6, duration_s=1.0).start()
        net.run(2.0)
        assert net.controller.app("steering").counters()["DataPacketIn"] > 0
        assert net.controller.app("host-tracker").counters()["ArpIn"] > 0
        directory = net.controller.app("service-directory")
        assert directory.counters()["ServiceFrameIn"] > 0

    def test_subscriptions_listing_matches_bus(self, small_net):
        bus_edges = small_net.controller.bus.subscriptions()
        per_app = sum(
            len(app.subscriptions()) for app in small_net.controller.apps
        )
        assert per_app == len(bus_edges) > 0


class TestSteeringRuleCache:
    def test_traffic_populates_cache(self, steering_net):
        net = steering_net
        HttpFlow(net.sim, net.host("h1_1"), GATEWAY_IP,
                 rate_bps=4e6, duration_s=1.0).start()
        net.run(2.0)
        cache = net.controller.app("steering").rule_cache
        assert cache.misses > 0
        assert len(cache) > 0

    @pytest.mark.parametrize("make_event", [
        lambda net: HostMoved(
            next(iter(net.controller.nib.hosts.values())),
            old_dpid=1, old_port=9,
        ),
        lambda net: LinkTimedOut(
            next(iter(net.controller.nib.links.values()))
        ),
    ])
    def test_nib_change_drops_memoized_paths(self, steering_net, make_event):
        net = steering_net
        HttpFlow(net.sim, net.host("h1_1"), GATEWAY_IP,
                 rate_bps=4e6, duration_s=1.0).start()
        net.run(2.0)
        cache = net.controller.app("steering").rule_cache
        assert len(cache) > 0
        net.controller.bus.publish(make_event(net))
        assert len(cache) == 0
        assert cache.invalidations >= 1


class TestTopologyApp:
    def test_switch_join_lands_in_nib(self, small_net):
        nib = small_net.controller.nib
        for dpid in small_net.controller.switches:
            assert dpid in nib.switches

    def test_uplink_loss_published_once_with_all_dpids(self, small_net):
        seen = []
        small_net.controller.bus.subscribe(
            UplinksLost, lambda e: seen.append(e.dpids)
        )
        small_net.controller.bus.publish(UplinksLost(dpids=(1, 2)))
        assert seen == [(1, 2)]


class TestPolicyEngineApp:
    @pytest.fixture
    def net(self):
        policies = PolicyTable()
        policies.add(Policy(
            name="drop-telnet",
            selector=FlowSelector(tp_dst=23),
            action=PolicyAction.DROP,
        ))
        policies.add(Policy(
            name="inspect-internet",
            selector=FlowSelector(dst_ip=GATEWAY_IP),
            action=PolicyAction.CHAIN,
            service_chain=("ids",),
            fail_mode=FailMode.CLOSED,
        ))
        net = build_livesec_network(
            topology="linear", policies=policies,
            elements=[("ids", 1)], num_as=2, hosts_per_as=1,
        )
        net.start()
        return net

    def engine_and_src(self, net):
        host = net.host("h1_1")
        src = net.controller.nib.host_by_mac(host.mac)
        assert src is not None
        return net.controller.app("policy-engine"), host, src

    def test_default_allow(self, net):
        engine, host, src = self.engine_and_src(net)
        flow = http_nine(host.mac, host.ip)._replace(
            nw_dst="10.0.2.1", dl_dst="other"
        )
        decision = engine.decide(flow, src)
        assert decision.verdict == "allow"
        assert decision.policy is None
        assert decision.policy_name == "default"
        assert decision.waypoints == []

    def test_drop_policy(self, net):
        engine, host, src = self.engine_and_src(net)
        flow = http_nine(host.mac, host.ip)._replace(tp_dst=23)
        decision = engine.decide(flow, src)
        assert decision.verdict == "block"
        assert decision.policy_name == "drop-telnet"

    def test_chain_resolves_waypoints(self, net):
        engine, host, src = self.engine_and_src(net)
        decision = engine.decide(http_nine(host.mac, host.ip), src)
        assert decision.verdict == "allow"
        assert len(decision.waypoints) == 1
        assert decision.element_macs == (net.elements[0].mac,)

    def test_fail_closed_blocks_without_elements(self, net):
        engine, host, src = self.engine_and_src(net)
        net.elements[0].fail()
        net.run(10.0)  # element expires out of the registry
        decision = engine.decide(http_nine(host.mac, host.ip), src)
        assert decision.verdict == "block"
        assert decision.policy_name == "inspect-internet"


class TestUserGrainDispatchStability:
    """Satellite: a known user's later flows must reuse the element the
    user was pinned to, across element churn, until failover moves it."""

    def _element_for(self, net, sport):
        sessions = [
            s for s in net.controller.sessions
            if s.flow.tp_src == sport
        ]
        assert len(sessions) == 1, f"expected one session for sport {sport}"
        assert sessions[0].element_macs, "session must be steered"
        return sessions[0].element_macs[0]

    def test_second_flow_reuses_assignment_across_churn_and_failover(self):
        policies = PolicyTable()
        policies.add(Policy(
            name="inspect",
            selector=FlowSelector(dst_ip=GATEWAY_IP),
            action=PolicyAction.CHAIN,
            service_chain=("ids",),
            granularity=Granularity.USER,
        ))
        net = build_livesec_network(
            topology="linear", policies=policies,
            elements=[("ids", 2)], num_as=3, hosts_per_as=1,
            idle_timeout_s=30.0,
        )
        net.start()
        host = net.host("h1_1")

        flow1 = HttpFlow(net.sim, host, GATEWAY_IP, rate_bps=1e6,
                         sport=31001)
        flow1.start()
        net.run(1.0)
        pinned = self._element_for(net, 31001)

        # Element churn: a new, idle element comes online.  Flow-grain
        # dispatch would prefer it; user grain must stay pinned.
        net.add_element("ids", net.topology.as_switches[2])
        net.run(1.5)
        flow2 = HttpFlow(net.sim, host, GATEWAY_IP, rate_bps=1e6,
                         sport=31002)
        flow2.start()
        net.run(1.0)
        assert self._element_for(net, 31002) == pinned

        # Failover: the pinned element crashes; both sessions re-steer
        # to one surviving element, and the next flow follows it.
        dead = next(e for e in net.elements if e.mac == pinned)
        dead.fail()
        net.run(8.0)  # liveness timeout (5s) + expiry sweep slack
        failovers = net.controller.log.query(kind=EventKind.FLOW_FAILOVER)
        assert {e.data["outcome"] for e in failovers} == {"recovered"}
        replacement = self._element_for(net, 31001)
        assert replacement != pinned
        assert self._element_for(net, 31002) == replacement

        flow3 = HttpFlow(net.sim, host, GATEWAY_IP, rate_bps=1e6,
                         sport=31003)
        flow3.start()
        net.run(1.0)
        assert self._element_for(net, 31003) == replacement
        for flow in (flow1, flow2, flow3):
            flow.stop()


class TestMonitorApp:
    def test_link_load_events_from_port_stats(self, steering_net):
        net = steering_net
        HttpFlow(net.sim, net.host("h1_1"), GATEWAY_IP,
                 rate_bps=4e6, duration_s=2.0).start()
        net.run(4.0)
        assert net.controller.log.query(kind=EventKind.LINK_LOAD)

    def test_flow_stats_subscription_via_controller(self, small_net):
        seen = []
        unsubscribe = small_net.controller.subscribe_flow_stats(seen.append)
        for dpid in small_net.controller.switches:
            small_net.controller.request_flow_stats(dpid)
        small_net.run(0.5)
        assert seen
        unsubscribe()
        count = len(seen)
        for dpid in small_net.controller.switches:
            small_net.controller.request_flow_stats(dpid)
        small_net.run(0.5)
        assert len(seen) == count


class TestAddApp:
    """The README's extension point: third-party apps via add_app."""

    def _watcher_class(self):
        from repro.core.apps import App
        from repro.core.bus import DataPacketIn

        class Watcher(App):
            name = "watcher"
            summary = "records data packet-ins"

            def __init__(self, ctx):
                super().__init__(ctx)
                self.seen = 0
                self.listen(DataPacketIn, self.on_data_packet)

            def on_data_packet(self, event):
                self.seen += 1

        return Watcher

    def test_registered_app_receives_events(self, steering_net):
        net = steering_net
        watcher = net.controller.add_app(self._watcher_class())
        assert net.controller.app("watcher") is watcher
        assert watcher in net.controller.apps
        HttpFlow(net.sim, net.host("h1_1"), GATEWAY_IP,
                 rate_bps=1e6, duration_s=0.5).start()
        net.run(1.0)
        assert watcher.seen > 0
        assert watcher.counters()["DataPacketIn"] == watcher.seen

    def test_duplicate_name_rejected(self, small_net):
        small_net.controller.add_app(self._watcher_class())
        with pytest.raises(ValueError):
            small_net.controller.add_app(self._watcher_class())
