"""Property-based tests (hypothesis) for core invariants."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import messages as svcmsg
from repro.core.loadbalance import (
    ElementLoad,
    LoadBalancer,
    load_deviation,
    make_dispatcher,
)
from repro.analysis.metrics import percentile
from repro.net.packet import FlowNineTuple, ip_address, mac_address
from repro.net.simulator import Simulator
from repro.openflow.match import Match

# ---------------------------------------------------------------------------
# Strategies

macs = st.integers(min_value=1, max_value=2 ** 48 - 1).map(mac_address)
ips = st.integers(min_value=1, max_value=2 ** 24).map(ip_address)
ports = st.integers(min_value=0, max_value=65535)
opt_ports = st.one_of(st.none(), ports)
opt_ips = st.one_of(st.none(), ips)


@st.composite
def nine_tuples(draw):
    proto = draw(st.sampled_from([None, 1, 6, 17]))
    has_transport = proto in (6, 17)
    return FlowNineTuple(
        vlan=draw(st.one_of(st.none(), st.integers(0, 4095))),
        dl_src=draw(macs),
        dl_dst=draw(macs),
        dl_type=draw(st.sampled_from([0x0800, 0x0806, 0x86DD])),
        nw_src=draw(opt_ips),
        nw_dst=draw(opt_ips),
        nw_proto=proto,
        tp_src=draw(opt_ports) if has_transport else None,
        tp_dst=draw(opt_ports) if has_transport else None,
    )


@st.composite
def matches(draw):
    def maybe(strategy):
        return draw(st.one_of(st.none(), strategy))

    return Match(
        in_port=maybe(st.integers(1, 48)),
        dl_src=maybe(macs),
        dl_dst=maybe(macs),
        dl_type=maybe(st.sampled_from([0x0800, 0x0806])),
        dl_vlan=maybe(st.integers(0, 4095)),
        nw_src=maybe(ips),
        nw_dst=maybe(ips),
        nw_proto=maybe(st.sampled_from([1, 6, 17])),
        tp_src=maybe(ports),
        tp_dst=maybe(ports),
    )


# ---------------------------------------------------------------------------
# 9-tuple properties


class TestNineTupleProperties:
    @given(nine_tuples())
    def test_reversal_is_involution(self, flow):
        assert flow.reversed().reversed() == flow

    @given(nine_tuples())
    def test_reversal_swaps_endpoints(self, flow):
        rev = flow.reversed()
        assert rev.dl_src == flow.dl_dst
        assert rev.nw_dst == flow.nw_src
        assert rev.tp_src == flow.tp_dst

    @given(nine_tuples())
    def test_reversal_preserves_invariants(self, flow):
        rev = flow.reversed()
        assert rev.vlan == flow.vlan
        assert rev.dl_type == flow.dl_type
        assert rev.nw_proto == flow.nw_proto


# ---------------------------------------------------------------------------
# Match properties


class TestMatchProperties:
    @given(matches())
    def test_subset_reflexive(self, match):
        assert match.is_subset_of(match)

    @given(matches())
    def test_everything_subset_of_wildcard(self, match):
        assert match.is_subset_of(Match())

    @given(matches(), matches())
    def test_subset_antisymmetry_on_distinct(self, a, b):
        if a.is_subset_of(b) and b.is_subset_of(a):
            assert a == b

    @given(nine_tuples(), st.integers(1, 48))
    def test_exact_match_from_nine_tuple_matches_nothing_stricter(
            self, flow, in_port):
        match = Match.from_nine_tuple(flow, in_port=in_port)
        assert match.wildcard_count() <= 12
        # The match must be covered by every selective relaxation.
        relaxed = Match.from_nine_tuple(flow)
        assert match.is_subset_of(relaxed)


# ---------------------------------------------------------------------------
# Message codec properties

texts = st.text(alphabet=string.ascii_letters + string.digits + ".:-_/ ",
                min_size=1, max_size=40)


class TestCodecProperties:
    @given(
        mac=macs,
        service=st.sampled_from(["ids", "l7", "firewall", "virus"]),
        cpu=st.floats(0, 1, allow_nan=False),
        mem=st.floats(0, 1, allow_nan=False),
        pps=st.floats(0, 1e7, allow_nan=False),
        flows=st.integers(0, 10**6),
    )
    def test_online_roundtrip(self, mac, service, cpu, mem, pps, flows):
        message = svcmsg.OnlineMessage(
            element_mac=mac, certificate="c", service_type=service,
            cpu=cpu, memory=mem, pps=pps, active_flows=flows,
        )
        decoded = svcmsg.decode(svcmsg.encode_online(message))
        assert decoded.element_mac == mac
        assert decoded.service_type == service
        assert abs(decoded.cpu - cpu) < 1e-3
        assert decoded.active_flows == flows

    @given(flow=st.one_of(st.none(), nine_tuples()),
           kind=st.sampled_from(["attack", "protocol", "virus"]),
           detail_key=texts, detail_value=texts)
    def test_event_roundtrip(self, flow, kind, detail_key, detail_value):
        message = svcmsg.EventReportMessage(
            element_mac="m", certificate="c", kind=kind, flow=flow,
            detail={detail_key: detail_value},
        )
        decoded = svcmsg.decode(svcmsg.encode_event(message))
        assert decoded.kind == kind
        assert decoded.flow == flow
        assert decoded.detail[detail_key] == detail_value

    @given(st.binary(max_size=64))
    def test_decode_never_crashes_unexpectedly(self, payload):
        try:
            svcmsg.decode(payload)
        except svcmsg.MessageFormatError:
            pass  # the only allowed failure mode

    @given(secret=texts, mac=macs)
    def test_certificate_verifies_itself_only(self, secret, mac):
        cert = svcmsg.issue_certificate(secret, mac)
        assert cert == svcmsg.issue_certificate(secret, mac)
        assert cert != svcmsg.issue_certificate(secret + "x", mac)


# ---------------------------------------------------------------------------
# Load-balancing properties


class TestBalancerProperties:
    @given(
        dispatcher_name=st.sampled_from(["polling", "hash", "queuing",
                                         "minload"]),
        n_elements=st.integers(1, 8),
        n_flows=st.integers(1, 40),
    )
    @settings(max_examples=40)
    def test_assignments_always_valid_and_released(
            self, dispatcher_name, n_elements, n_flows):
        balancer = LoadBalancer(make_dispatcher(dispatcher_name))
        pool = [
            ElementLoad(mac=f"e{i}", reported_pps=0, reported_cpu=0,
                        assigned_flows=0, pending=0)
            for i in range(n_elements)
        ]
        flows = [
            FlowNineTuple(None, "a", "b", 0x0800, "10.0.0.1", "10.0.0.2",
                          6, 1000 + i, 80)
            for i in range(n_flows)
        ]
        macs_set = {c.mac for c in pool}
        for flow in flows:
            assert balancer.assign(pool, flow) in macs_set
        counts = balancer.assigned_flow_counts()
        assert sum(counts.values()) == n_flows
        for flow in flows:
            balancer.release(flow)
        assert sum(balancer.assigned_flow_counts().values()) == 0

    @given(st.lists(st.floats(0, 1e6, allow_nan=False), min_size=2,
                    max_size=20))
    def test_deviation_nonnegative(self, loads):
        assert load_deviation(loads) >= 0.0

    @given(st.floats(0.001, 1e6, allow_nan=False), st.integers(2, 10))
    def test_deviation_zero_for_uniform(self, value, count):
        # Float rounding in the mean can leave an ulp of residue.
        assert load_deviation([value] * count) < 1e-12

    @given(st.lists(st.floats(0.001, 1e6), min_size=2, max_size=20),
           st.floats(0.1, 100))
    def test_deviation_scale_invariant(self, loads, factor):
        original = load_deviation(loads)
        scaled = load_deviation([l * factor for l in loads])
        assert abs(original - scaled) < 1e-6 * max(1.0, original)


# ---------------------------------------------------------------------------
# Metric and simulator properties


class TestMetricProperties:
    @given(st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1,
                    max_size=50),
           st.floats(0, 100))
    def test_percentile_within_range(self, values, p):
        result = percentile(values, p)
        assert min(values) <= result <= max(values)

    @given(st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1,
                    max_size=50))
    def test_percentile_monotone(self, values):
        assert percentile(values, 25) <= percentile(values, 75)


class TestSimulatorProperties:
    @given(st.lists(st.floats(0, 100, allow_nan=False), min_size=1,
                    max_size=50))
    @settings(max_examples=50)
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(st.lists(st.tuples(st.floats(0, 10, allow_nan=False),
                              st.booleans()),
                    min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_cancelled_events_never_fire(self, plan):
        sim = Simulator()
        fired = []
        expected = 0
        for index, (delay, cancel) in enumerate(plan):
            handle = sim.schedule(delay, fired.append, index)
            if cancel:
                handle.cancel()
            else:
                expected += 1
        sim.run()
        assert len(fired) == expected
