"""Unit tests for metrics and table formatting."""

import pytest

from repro.analysis import (
    Sampler,
    format_table,
    mbps,
    percentile,
    summarize_latencies,
    windowed_goodput_bps,
)


class TestRates:
    def test_mbps(self):
        assert mbps(8e6, 1.0) == 8.0
        assert mbps(8e6, 2.0) == 4.0
        assert mbps(1, 0.0) == 0.0

    def test_windowed_goodput(self):
        assert windowed_goodput_bps(1000, 2000, 1.0) == 8000.0
        assert windowed_goodput_bps(0, 0, 1.0) == 0.0
        assert windowed_goodput_bps(0, 100, 0.0) == 0.0


class TestPercentile:
    def test_median_of_odd(self):
        assert percentile([3, 1, 2], 50) == 2

    def test_interpolation(self):
        assert percentile([0, 10], 50) == 5.0
        assert percentile([0, 10], 25) == 2.5

    def test_extremes(self):
        values = [5, 1, 9, 3]
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 9

    def test_single_value(self):
        assert percentile([7], 95) == 7

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_p(self):
        with pytest.raises(ValueError):
            percentile([1], 150)


class TestLatencySummary:
    def test_summary_fields(self):
        summary = summarize_latencies([0.001, 0.002, 0.003])
        assert summary["count"] == 3
        assert summary["mean"] == pytest.approx(0.002)
        assert summary["p50"] == pytest.approx(0.002)
        assert summary["max"] == 0.003

    def test_empty_is_zeroes(self):
        summary = summarize_latencies([])
        assert summary["count"] == 0
        assert summary["mean"] == 0.0


class TestSampler:
    def test_periodic_collection(self, sim):
        values = iter(range(100))
        sampler = Sampler(sim, 1.0, lambda: float(next(values)))
        sim.run(until=3.5)
        assert sampler.values == [0.0, 1.0, 2.0]
        assert sampler.times == [1.0, 2.0, 3.0]
        assert sampler.mean() == 1.0
        assert sampler.last() == 2.0

    def test_stop(self, sim):
        sampler = Sampler(sim, 1.0, lambda: 1.0)
        sim.run(until=1.5)
        sampler.stop()
        sim.run(until=5.0)
        assert len(sampler.values) == 1

    def test_empty_sampler(self, sim):
        sampler = Sampler(sim, 1.0, lambda: 1.0)
        assert sampler.mean() == 0.0
        assert sampler.last() is None


class TestTable:
    def test_basic_rendering(self):
        text = format_table(["name", "value"], [["a", 1], ["bb", 2.5]],
                            title="demo")
        lines = text.splitlines()
        assert lines[0] == "== demo =="
        assert "name" in lines[1] and "value" in lines[1]
        assert lines[2].startswith("----")
        assert "bb" in lines[4]

    def test_column_width_fits_widest(self):
        text = format_table(["x"], [["wide-cell-content"]])
        header, rule, row = text.splitlines()
        assert len(rule) == len("wide-cell-content")

    def test_float_formatting(self):
        text = format_table(["v"], [[3.14159]])
        assert "3.142" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text
