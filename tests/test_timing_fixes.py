"""Regression tests for the data-path timing bugfixes that shipped
with the fluid fast-forward kernel.

* Drop-tail queue slots free at *serialization* end, not delivery:
  holding a buffer slot across propagation made long-haul links drop
  frames their transmit buffer had already put on the wire.
* Flow pacing is anchored to the start time (``paced_at``), so float
  error no longer accumulates packet-by-packet over long runs.
* Cancelled events are counted and compacted instead of rotting in the
  heap, and ``Simulator.pending()`` is O(1).
* ``Simulator.every(start=..., jitter=...)`` raises instead of
  silently dropping the jitter.
"""

import pytest

from repro.net import packet as pkt
from repro.net.node import Node, connect
from repro.net.simulator import Simulator
from repro.net.wifi import AirMedium, WirelessLink
from repro.workloads.flows import CbrUdpFlow


class Sink(Node):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def receive(self, frame, in_port):
        self.received.append((self.sim.now, frame, in_port))


def frame_of_size(size: int) -> pkt.Ethernet:
    return pkt.make_udp("m1", "m2", "1.1.1.1", "2.2.2.2", 1, 2, size=size)


class TestQueueSlotRelease:
    """S1: the buffer slot frees when serialization ends; propagation
    happens on the wire, not in the buffer."""

    def test_slot_freed_before_propagation_completes(self, sim):
        a, b = Sink(sim, "a"), Sink(sim, "b")
        # 10 ms serialization, 1 s propagation, a single buffer slot.
        link = connect(sim, a, b, bandwidth_bps=1e6, delay_s=1.0,
                       queue_packets=1)
        a.send(frame_of_size(1250), 1)
        # The first frame is still propagating at t=0.5 but finished
        # serializing at t=0.01 -- its slot must be free again.
        sim.schedule_at(0.5, a.send, frame_of_size(1250), 1)
        sim.run()
        assert len(b.received) == 2
        assert link.stats(a.port(1))["dropped"] == 0
        assert a.port(1).tx_drops == 0

    def test_still_drops_while_serializing(self, sim):
        a, b = Sink(sim, "a"), Sink(sim, "b")
        link = connect(sim, a, b, bandwidth_bps=1e6, delay_s=1.0,
                       queue_packets=1)
        # Three back-to-back sends: slot taken by #1 (serializing),
        # #2 arrives while #1 still serializes and is dropped, as is #3.
        for _ in range(3):
            a.send(frame_of_size(1250), 1)
        sim.run()
        assert len(b.received) == 1
        assert link.stats(a.port(1))["dropped"] == 2

    def test_occupancy_tracks_serialization_window(self, sim):
        a, b = Sink(sim, "a"), Sink(sim, "b")
        link = connect(sim, a, b, bandwidth_bps=1e6, delay_s=1.0,
                       queue_packets=10)
        a.send(frame_of_size(1250), 1)  # serializes over [0, 10ms]
        direction = link._directions[id(a.port(1))]
        assert direction.occupancy(0.005) == 1
        assert direction.occupancy(0.5) == 0  # on the wire, slot free

    def test_wireless_slot_freed_at_airtime_end(self, sim):
        a, b = Sink(sim, "a"), Sink(sim, "b")
        medium = AirMedium(bandwidth_bps=1e6)
        link = WirelessLink(sim, a.port(1), b.port(1), medium,
                            delay_s=1.0, queue_packets=1)
        a.port(1).link = link
        b.port(1).link = link
        a.send(frame_of_size(1250), 1)
        sim.schedule_at(0.5, a.send, frame_of_size(1250), 1)
        sim.run()
        assert len(b.received) == 2
        assert link.stats(a.port(1))["dropped"] == 0


class TestAbsolutePacing:
    """S2: emissions sit on the ``start + k * interval`` grid exactly."""

    def test_long_flow_emits_exact_packet_count(self, small_net):
        net = small_net
        hosts = [h for h in net.topology.hosts if h is not net.topology.gateway]
        src, dst = hosts[0], hosts[1]
        # 10 Mbps / 1500 B -> 1.2 ms interval; over 60 s the old
        # schedule-relative pacing accumulated float error packet by
        # packet.  The count must match the emission grid exactly.
        flow = CbrUdpFlow(net.sim, src, dst.ip, rate_bps=10e6,
                          packet_size=1500, duration_s=60.0).start()
        net.run(62.0)
        expected = 0
        while flow.paced_at(expected) < flow._stop_at:
            expected += 1
        assert flow.packets_sent == expected
        assert abs(flow.packets_sent - 50000) <= 1
        assert flow.bytes_sent == flow.packets_sent * 1500

    def test_paced_at_is_anchored_to_start(self, small_net):
        net = small_net
        hosts = [h for h in net.topology.hosts if h is not net.topology.gateway]
        flow = CbrUdpFlow(net.sim, hosts[0], hosts[1].ip, rate_bps=8e6,
                          packet_size=1000, duration_s=1.0).start()
        net.run(0.5)
        base = flow._started_at
        for k in (0, 1, 7, 100000):
            assert flow.paced_at(k) == base + k * flow.interval_s


class TestCancelledEventAccounting:
    """S3: cancellation churn is counted, compacted, and O(1) to query."""

    def test_pending_counts_only_live_events(self):
        sim = Simulator()
        handles = [sim.schedule(1.0 + i * 1e-6, lambda: None)
                   for i in range(50)]
        for handle in handles[:30]:
            handle.cancel()
        assert sim.pending() == 20

    def test_double_cancel_counts_once(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert sim.pending() == 1

    def test_heap_compacts_under_churn(self):
        sim = Simulator()
        handles = [sim.schedule(1.0 + i * 1e-6, lambda: None)
                   for i in range(1000)]
        for handle in handles[:900]:
            handle.cancel()
        assert sim.heap_compactions >= 1
        # The dead handles were actually swept, not just counted.
        assert len(sim._queue) < 300
        assert sim.pending() == 100
        sim.run()
        assert sim.events_processed == 100

    def test_cancel_after_fire_does_not_skew_counter(self):
        sim = Simulator()
        handle = sim.schedule(0.5, lambda: None)
        sim.schedule(1.0, lambda: None)
        sim.run()
        handle.cancel()  # already fired; must not underflow accounting
        assert sim.pending() == 0


class TestEveryJitterValidation:
    """S4: an explicit start plus a jitter is a contradiction."""

    def test_jitter_with_explicit_start_raises(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.every(1.0, lambda: None, start=5.0, jitter=0.25)

    def test_jitter_offsets_default_start(self):
        sim = Simulator()
        fired = []
        sim.every(1.0, lambda: fired.append(sim.now), jitter=0.25)
        sim.run(until=3.0)
        assert fired == [1.25, 2.25]

    def test_explicit_start_without_jitter_ok(self):
        sim = Simulator()
        fired = []
        sim.every(1.0, lambda: fired.append(sim.now), start=0.5)
        sim.run(until=2.6)
        assert fired == [0.5, 1.5, 2.5]
