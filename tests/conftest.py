"""Shared fixtures for the LiveSec reproduction test suite."""

from __future__ import annotations

import pytest

from repro import Policy, PolicyTable, build_livesec_network
from repro.core.policy import FlowSelector, PolicyAction
from repro.net.simulator import Simulator

GATEWAY_IP = "10.255.255.254"


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def ids_policy_table():
    """Internet-bound traffic chained through one IDS element."""
    table = PolicyTable()
    table.add(
        Policy(
            name="inspect-internet",
            selector=FlowSelector(dst_ip=GATEWAY_IP),
            action=PolicyAction.CHAIN,
            service_chain=("ids",),
        )
    )
    return table


@pytest.fixture
def small_net():
    """A started 2-switch LiveSec network with no policies."""
    net = build_livesec_network(topology="linear", num_as=2, hosts_per_as=1)
    net.start()
    return net


@pytest.fixture
def steering_net(ids_policy_table):
    """A started 3-switch network with 2 IDS elements and the IDS policy."""
    net = build_livesec_network(
        topology="linear",
        policies=ids_policy_table,
        elements=[("ids", 2)],
        num_as=3,
        hosts_per_as=2,
    )
    net.start()
    return net
