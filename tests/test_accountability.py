"""Integration tests for forwarding accountability: path-proof
stamping on steered sessions, the accountability app's three evidence
channels (egress proofs, stray tagged frames, the absence audit), and
the quarantine -> re-steer reaction.
"""

import pytest

from repro.core.deployment import build_livesec_network
from repro.core.events import EventKind
from repro.faults import run_compromised_switch_scenario
from repro.faults.scenarios import chaos_policy_table
from repro.net import packet as pkt
from repro.openflow import messages as ofmsg
from repro.openflow.pathproof import (
    PathDescriptor,
    PathTag,
    derive_switch_secret,
)


def build_accountable_net():
    return build_livesec_network(
        topology="linear",
        policies=chaos_policy_table("open"),
        elements=[("ids", 3)],
        num_as=3,
        hosts_per_as=1,
        element_timeout_s=1.5,
        dispatcher="polling",
        accountability=True,
    )


def tagged_frame(tag):
    frame = pkt.make_udp(
        "00:00:00:00:00:11", "00:00:00:00:00:22",
        "10.0.1.1", "10.0.3.1", 20000, 9000, payload=b"x",
    )
    frame.path_tag = tag
    return frame


class TestProofPlumbing:
    def test_sessions_get_descriptors_and_valid_proofs(self):
        # The compromise fires at t=5s on the absolute sim clock; with
        # a 2s warmup a 2.5s run ends before it: a clean run.
        report = run_compromised_switch_scenario(
            seed=0, variant="skip-waypoint", duration_s=2.5
        )
        assert report.path_violations == 0
        assert report.quarantined_dpids == []

    def test_accountability_off_by_default(self):
        net = build_livesec_network(
            topology="linear",
            policies=chaos_policy_table("open"),
            elements=[("ids", 1)],
            dispatcher="polling",
        )
        assert not net.controller.accountability_enabled
        assert "accountability" not in net.controller._apps


class TestEgressProofVerdicts:
    def test_truncated_proof_quarantines_offender(self):
        net = build_accountable_net()
        net.start()
        net.run(1.0)
        secret = net.controller.secret
        desc = PathDescriptor.for_path(secret, 999, (1, 2, 2, 3))
        tag = PathTag(descriptor=desc)
        for dpid in (1, 2, 3):  # waypoint stamped once: skip-waypoint
            tag = tag.stamped(derive_switch_secret(secret, dpid), dpid)
        net.controller.on_path_proof(ofmsg.PathProofReport(
            dpid=3, cookie=0, descriptor=desc, marks=tag.marks,
        ))
        assert net.controller.quarantined_dpids == {2: "mark-mismatch"}
        kinds = [event.kind for event in net.controller.log.all()]
        assert EventKind.PATH_VIOLATION in kinds
        assert EventKind.SWITCH_QUARANTINED in kinds

    def test_valid_proof_raises_nothing(self):
        net = build_accountable_net()
        net.start()
        net.run(1.0)
        secret = net.controller.secret
        desc = PathDescriptor.for_path(secret, 998, (1, 3))
        tag = PathTag(descriptor=desc)
        for dpid in desc.dpids:
            tag = tag.stamped(derive_switch_secret(secret, dpid), dpid)
        net.controller.on_path_proof(ofmsg.PathProofReport(
            dpid=3, cookie=0, descriptor=desc, marks=tag.marks,
        ))
        assert net.controller.quarantined_dpids == {}
        counters = net.controller.metrics.snapshot().counters()
        assert counters.get("accountability.proofs{result=valid}", 0) == 1


class TestStrayTagEvidence:
    def test_tagged_punt_convicts_last_valid_stamper(self):
        # A frame that punts while still carrying its tag left the
        # expected path: the last switch whose mark verifies is the
        # misrouter.
        net = build_accountable_net()
        net.start()
        net.run(1.0)
        secret = net.controller.secret
        desc = PathDescriptor.for_path(secret, 777, (1, 2, 2, 3))
        tag = PathTag(descriptor=desc)
        for dpid in (1, 2):  # honestly stamped up to the waypoint-in
            tag = tag.stamped(derive_switch_secret(secret, dpid), dpid)
        net.controller.on_packet_in(ofmsg.PacketIn(
            dpid=3, in_port=1, frame=tagged_frame(tag),
        ))
        assert net.controller.quarantined_dpids == {2: "off-path-frame"}

    def test_unmarked_stray_tag_accuses_ingress(self):
        net = build_accountable_net()
        net.start()
        net.run(1.0)
        secret = net.controller.secret
        desc = PathDescriptor.for_path(secret, 778, (1, 2, 2, 3))
        net.controller.on_packet_in(ofmsg.PacketIn(
            dpid=2, in_port=1, frame=tagged_frame(PathTag(descriptor=desc)),
        ))
        assert net.controller.quarantined_dpids == {1: "off-path-frame"}

    def test_tagged_frame_never_steered_as_first_packet(self):
        # The tagged punt must short-circuit before the steering app's
        # first-packet path: no new session may be minted for it.
        net = build_accountable_net()
        net.start()
        net.run(1.0)
        before = len(list(net.controller.sessions))
        secret = net.controller.secret
        desc = PathDescriptor.for_path(secret, 779, (1, 2, 2, 3))
        net.controller.on_packet_in(ofmsg.PacketIn(
            dpid=2, in_port=1, frame=tagged_frame(PathTag(descriptor=desc)),
        ))
        assert len(list(net.controller.sessions)) == before


class TestCompromisedSwitchScenario:
    @pytest.mark.parametrize("variant,expected_reason", [
        ("skip-waypoint", "mark-mismatch"),
        ("tag-strip", "proof-silence"),
    ])
    def test_detects_quarantines_and_resteers(self, variant,
                                              expected_reason):
        report = run_compromised_switch_scenario(
            seed=0, variant=variant, duration_s=9.0
        )
        assert report.injected.get("switch-compromise") == 1
        assert report.quarantined_dpids == [2]
        assert report.path_violations >= 1
        # Bounded detection: egress proofs convict within packets; the
        # absence audit within the silence threshold plus one sweep.
        assert 0.0 < report.time_to_detect_s["max"] <= 2.0
        # The quarantined switch's element lost its sessions to a
        # replica on an honest switch.
        assert report.recovered_sessions >= 1
        assert report.time_to_recover_s["max"] <= 2.5
        assert any(
            f"reason={expected_reason}" in line or expected_reason in line
            for line in report.event_lines
            if EventKind.PATH_VIOLATION in line
        )

    def test_quarantine_resteer_is_attributed(self):
        report = run_compromised_switch_scenario(
            seed=0, variant="skip-waypoint", duration_s=9.0
        )
        assert any(
            EventKind.FLOW_FAILOVER in line and "quarantine:" in line
            for line in report.event_lines
        )

    def test_same_seed_same_digest(self):
        first = run_compromised_switch_scenario(
            seed=5, variant="tag-strip", duration_s=9.0
        )
        second = run_compromised_switch_scenario(
            seed=5, variant="tag-strip", duration_s=9.0
        )
        assert first.event_lines == second.event_lines
        assert first.event_digest == second.event_digest
