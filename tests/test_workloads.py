"""Unit tests for the traffic generators and user behaviours."""

import pytest

from repro.net.host import Host
from repro.net.node import connect
from repro.net.packet import IP_PROTO_TCP, IP_PROTO_UDP
from repro.workloads import (
    AttackWebFlow,
    BitTorrentFlow,
    CbrUdpFlow,
    HttpFlow,
    PortScanFlow,
    SshFlow,
    UserBehavior,
    UserChurn,
    VirusDownloadFlow,
)


@pytest.fixture
def pair(sim):
    a = Host(sim, "a", "00:00:00:00:00:01", "10.0.0.1")
    b = Host(sim, "b", "00:00:00:00:00:02", "10.0.0.2")
    connect(sim, a, b, bandwidth_bps=1e9, delay_s=1e-5)
    return a, b


class TestPacing:
    def test_rate_is_respected(self, sim, pair):
        a, b = pair
        flow = CbrUdpFlow(sim, a, b.ip, rate_bps=10e6, packet_size=1250,
                          duration_s=1.0)
        flow.start()
        sim.run(until=2.0)
        # 10 Mbps for 1 s at 1250 B = 1000 packets.
        assert flow.packets_sent == pytest.approx(1000, abs=2)
        assert flow.delivered_bytes(b) == pytest.approx(1000 * 1250, rel=0.01)

    def test_duration_stops_flow(self, sim, pair):
        a, b = pair
        flow = CbrUdpFlow(sim, a, b.ip, rate_bps=1e6, duration_s=0.5)
        flow.start()
        sim.run(until=2.0)
        assert not flow.running

    def test_max_packets(self, sim, pair):
        a, b = pair
        flow = CbrUdpFlow(sim, a, b.ip, rate_bps=10e6, max_packets=7)
        flow.start()
        sim.run(until=2.0)
        assert flow.packets_sent == 7

    def test_stop_cancels_emission(self, sim, pair):
        a, b = pair
        flow = CbrUdpFlow(sim, a, b.ip, rate_bps=1e6)
        flow.start()
        sim.run(until=0.1)
        flow.stop()
        sent = flow.packets_sent
        sim.run(until=1.0)
        assert flow.packets_sent == sent

    def test_delayed_start(self, sim, pair):
        a, b = pair
        flow = CbrUdpFlow(sim, a, b.ip, rate_bps=1e6)
        flow.start(delay_s=0.5)
        sim.run(until=0.4)
        assert flow.packets_sent == 0
        sim.run(until=1.0)
        assert flow.packets_sent > 0
        flow.stop()

    def test_double_start_rejected(self, sim, pair):
        a, b = pair
        flow = CbrUdpFlow(sim, a, b.ip)
        flow.start()
        with pytest.raises(RuntimeError):
            flow.start()

    def test_goodput_measurement(self, sim, pair):
        a, b = pair
        flow = CbrUdpFlow(sim, a, b.ip, rate_bps=8e6, duration_s=1.0)
        flow.start()
        sim.run(until=1.0)
        assert flow.goodput_bps(b) == pytest.approx(8e6, rel=0.05)

    def test_flow_ids_unique(self, sim, pair):
        a, b = pair
        flow1 = CbrUdpFlow(sim, a, b.ip)
        flow2 = CbrUdpFlow(sim, a, b.ip)
        assert flow1.flow_id != flow2.flow_id

    def test_invalid_parameters(self, sim, pair):
        a, b = pair
        with pytest.raises(ValueError):
            CbrUdpFlow(sim, a, b.ip, rate_bps=0)
        with pytest.raises(ValueError):
            CbrUdpFlow(sim, a, b.ip, packet_size=0)


class TestPayloadShapes:
    def test_http_first_packet_is_get(self, sim, pair):
        flow = HttpFlow(sim, pair[0], pair[1].ip)
        assert flow.payload_for(0).startswith(b"GET ")
        assert flow.proto == IP_PROTO_TCP
        assert flow.dport == 80

    def test_ssh_banner(self, sim, pair):
        flow = SshFlow(sim, pair[0], pair[1].ip)
        assert flow.payload_for(0).startswith(b"SSH-2.0")
        assert flow.dport == 22

    def test_bittorrent_handshake(self, sim, pair):
        flow = BitTorrentFlow(sim, pair[0], pair[1].ip)
        assert flow.payload_for(0).startswith(b"\x13BitTorrent protocol")
        assert flow.dport == 6881

    def test_attack_flow_turns_malicious(self, sim, pair):
        flow = AttackWebFlow(sim, pair[0], pair[1].ip, attack_after=2)
        assert b"malware" in flow.payload_for(2)
        assert b"malware" not in flow.payload_for(1)

    def test_virus_flow_carries_signature(self, sim, pair):
        flow = VirusDownloadFlow(sim, pair[0], pair[1].ip, infected_packet=1)
        assert b"EICAR" in flow.payload_for(1)

    def test_portscan_sweeps_ports(self, sim, pair):
        a, b = pair
        seen_ports = set()
        b.default_handler = lambda host, frame: seen_ports.add(
            frame.transport().dport)
        flow = PortScanFlow(sim, a, b.ip, ports=20)
        flow.start()
        sim.run(until=5.0)
        assert len(seen_ports) == 20

    def test_udp_flow_uses_udp(self, sim, pair):
        a, b = pair
        received = []
        b.default_handler = lambda host, frame: received.append(frame)
        CbrUdpFlow(sim, a, b.ip, rate_bps=1e6, max_packets=1).start()
        sim.run(until=1.0)
        assert received[0].ip().proto == IP_PROTO_UDP


class TestUserBehavior:
    def test_join_starts_profile_flow(self, sim, pair):
        a, b = pair
        user = UserBehavior(sim, a, b.ip, profile="web")
        user.join()
        sim.run(until=2.0)
        assert user.flows and user.flows[0].packets_sent > 0
        assert isinstance(user.flows[0], HttpFlow)

    def test_switch_profile_replaces_flows(self, sim, pair):
        a, b = pair
        user = UserBehavior(sim, a, b.ip, profile="web")
        user.join()
        sim.run(until=1.0)
        old_flow = user.flows[0]
        user.switch_profile("bittorrent")
        sim.run(until=2.0)
        assert not old_flow.running
        assert isinstance(user.flows[0], BitTorrentFlow)

    def test_leave_stops_everything(self, sim, pair):
        a, b = pair
        user = UserBehavior(sim, a, b.ip)
        user.join()
        sim.run(until=1.0)
        user.leave()
        assert not user.active and user.flows == []

    def test_unknown_profile_rejected(self, sim, pair):
        with pytest.raises(ValueError):
            UserBehavior(sim, pair[0], pair[1].ip, profile="gopher")


class TestChurn:
    def test_join_leave_cycles(self, sim, pair):
        a, b = pair
        user = UserBehavior(sim, a, b.ip)
        churn = UserChurn(sim, [user], mean_session_s=1.0, mean_gap_s=0.5,
                          seed=7)
        churn.start()
        sim.run(until=20.0)
        churn.stop()
        assert churn.joins >= 2
        assert churn.leaves >= 1

    def test_seed_reproducibility(self, sim):
        a1 = Host(sim, "a1", "00:00:00:00:00:11", "10.0.1.1")
        times1, times2 = [], []
        churn1 = UserChurn(sim, [], seed=3)
        churn2 = UserChurn(sim, [], seed=3)
        for __ in range(10):
            times1.append(churn1.rng.random())
            times2.append(churn2.rng.random())
        assert times1 == times2
