"""Unit tests for the service registry and certification."""

import pytest

from repro.core import messages as svcmsg
from repro.core.services import CertificateError, ServiceRegistry


@pytest.fixture
def registry():
    return ServiceRegistry(secret="test-secret", liveness_timeout_s=2.0)


def online(registry, mac="e1", service_type="ids", cpu=0.1, pps=100.0,
           certificate=None, flows=0):
    return svcmsg.OnlineMessage(
        element_mac=mac,
        certificate=(certificate if certificate is not None
                     else registry.issue_certificate(mac)),
        service_type=service_type,
        cpu=cpu,
        memory=0.0,
        pps=pps,
        active_flows=flows,
    )


class TestOnlineIntake:
    def test_first_message_registers(self, registry):
        record = registry.handle_online(online(registry), now=1.0)
        assert record.mac == "e1"
        assert record.service_type == "ids"
        assert record.online and record.reports == 1
        assert registry.is_element("e1")

    def test_load_fields_updated(self, registry):
        registry.handle_online(online(registry, cpu=0.1, pps=10), now=1.0)
        record = registry.handle_online(
            online(registry, cpu=0.9, pps=900, flows=4), now=2.0)
        assert record.cpu == 0.9 and record.pps == 900
        assert record.active_flows == 4
        assert record.reports == 2

    def test_bad_certificate_rejected(self, registry):
        with pytest.raises(CertificateError):
            registry.handle_online(
                online(registry, certificate="forged"), now=1.0)
        assert not registry.is_element("e1")
        assert registry.rejected_macs["e1"] == "bad-certificate"

    def test_event_verification(self, registry):
        message = svcmsg.EventReportMessage(
            element_mac="e1",
            certificate=registry.issue_certificate("e1"),
            kind="attack", flow=None,
        )
        registry.verify_event(message)  # no raise
        message.certificate = "nope"
        with pytest.raises(CertificateError):
            registry.verify_event(message)


class TestLiveness:
    def test_silent_element_expires(self, registry):
        registry.handle_online(online(registry), now=0.0)
        expired = registry.expire(now=3.0)
        assert [r.mac for r in expired] == ["e1"]
        assert not registry.get("e1").online
        assert registry.online_elements() == []

    def test_expire_is_idempotent(self, registry):
        registry.handle_online(online(registry), now=0.0)
        registry.expire(now=3.0)
        assert registry.expire(now=4.0) == []

    def test_fresh_message_revives(self, registry):
        registry.handle_online(online(registry), now=0.0)
        registry.expire(now=3.0)
        record = registry.handle_online(online(registry), now=4.0)
        assert record.online
        assert registry.online_elements("ids")

    def test_expiry_and_recovery_counters(self, registry):
        registry.handle_online(online(registry), now=0.0)
        record = registry.get("e1")
        assert record.offline_count == 0 and record.recovered_count == 0
        registry.expire(now=3.0)
        assert record.offline_count == 1 and record.recovered_count == 0
        registry.handle_online(online(registry), now=4.0)
        assert record.offline_count == 1 and record.recovered_count == 1
        # A second expiry/revival cycle keeps counting; redundant expire
        # sweeps in between must not inflate offline_count.
        registry.expire(now=5.0)
        registry.expire(now=7.0)
        registry.expire(now=8.0)
        assert record.offline_count == 2
        registry.handle_online(online(registry), now=9.0)
        assert record.recovered_count == 2

    def test_online_reports_do_not_count_as_recovery(self, registry):
        registry.handle_online(online(registry), now=0.0)
        registry.handle_online(online(registry), now=1.0)
        registry.handle_online(online(registry), now=2.0)
        record = registry.get("e1")
        assert record.reports == 3
        assert record.recovered_count == 0

    def test_revived_element_is_candidate_again_unbiased(self, registry):
        registry.handle_online(online(registry, pps=500.0, flows=7), now=0.0)
        registry.expire(now=3.0)
        assert registry.candidates("ids") == []
        registry.handle_online(online(registry, pps=120.0, flows=2), now=4.0)
        loads = registry.candidates("ids")
        assert [c.mac for c in loads] == ["e1"]
        # The candidate view reflects the fresh report and starts with
        # zero pending dispatches -- no bias carried over from before
        # the expiry.
        assert loads[0].reported_pps == 120.0
        assert loads[0].assigned_flows == 2
        assert loads[0].pending == 0

    def test_expire_only_hits_silent_elements(self, registry):
        registry.handle_online(online(registry, mac="e1"), now=0.0)
        registry.handle_online(online(registry, mac="e2"), now=2.5)
        expired = registry.expire(now=3.0)
        assert [r.mac for r in expired] == ["e1"]
        assert [r.mac for r in registry.online_elements("ids")] == ["e2"]
        assert registry.get("e2").offline_count == 0


class TestQueries:
    def test_candidates_by_type(self, registry):
        registry.handle_online(online(registry, mac="e1", service_type="ids"),
                               now=0.0)
        registry.handle_online(online(registry, mac="e2", service_type="l7"),
                               now=0.0)
        ids_loads = registry.candidates("ids")
        assert [c.mac for c in ids_loads] == ["e1"]
        assert registry.candidates("firewall") == []

    def test_candidates_carry_load(self, registry):
        registry.handle_online(
            online(registry, pps=777.0, cpu=0.5, flows=3), now=0.0)
        load = registry.candidates("ids")[0]
        assert load.reported_pps == 777.0
        assert load.reported_cpu == 0.5
        assert load.assigned_flows == 3

    def test_summary(self, registry):
        registry.handle_online(online(registry, mac="e1"), now=0.0)
        registry.handle_online(online(registry, mac="e2", service_type="l7"),
                               now=0.0)
        with pytest.raises(CertificateError):
            registry.handle_online(
                online(registry, mac="rogue", certificate="bad"), now=0.0)
        summary = registry.summary()
        assert summary["total"] == 2
        assert summary["online"] == 2
        assert summary["by_type"] == {"ids": 1, "l7": 1}
        assert summary["rejected"] == 1

    def test_service_types_sorted(self, registry):
        for mac, kind in (("a", "l7"), ("b", "ids"), ("c", "virus")):
            registry.handle_online(
                online(registry, mac=mac, service_type=kind), now=0.0)
        assert registry.service_types() == ["ids", "l7", "virus"]
