"""Soak test: a long simulated campus day over a full deployment.

This exercises everything at once -- churn, mixed traffic, repeated
attacks of all kinds, steering, load balancing, monitoring -- and
asserts the system-level invariants that must hold after any amount of
activity.
"""

import pytest

from repro import Policy, PolicyTable, build_livesec_network
from repro.core.events import EventKind
from repro.core.policy import FlowSelector, PolicyAction
from repro.workloads.scenarios import CampusDayScenario

GATEWAY_IP = "10.255.255.254"


@pytest.fixture(scope="module")
def soak():
    """One 90-simulated-second campus day, shared by the assertions."""
    policies = PolicyTable()
    policies.add(Policy(
        name="full-inspection",
        selector=FlowSelector(dst_ip=GATEWAY_IP),
        action=PolicyAction.CHAIN,
        service_chain=("l7", "ids", "virus"),
    ))
    net = build_livesec_network(
        topology="star", policies=policies,
        elements=[("ids", 2), ("l7", 2), ("virus", 1)],
        num_as=4, hosts_per_as=2,
        host_timeout_s=10.0,
    )
    net.start()
    scenario = CampusDayScenario(net, GATEWAY_IP, seed=11,
                                 attack_interval_s=10.0)
    report = scenario.run(90.0)
    return net, scenario, report


class TestSoak:
    def test_scenario_generated_real_activity(self, soak):
        net, scenario, report = soak
        assert report.joins >= 10
        assert report.leaves >= 5
        assert report.attacks_launched >= 5

    def test_attacks_detected_and_blocked(self, soak):
        net, scenario, report = soak
        detected = net.controller.log.query(kind=EventKind.ATTACK_DETECTED)
        blocked = net.controller.log.query(kind=EventKind.FLOW_BLOCKED)
        assert detected, "a day of attacks must produce detections"
        assert blocked

    def test_all_element_types_saw_traffic(self, soak):
        net, scenario, report = soak
        by_type = {}
        for element in net.elements:
            by_type.setdefault(element.service_type, 0)
            by_type[element.service_type] += element.processed_packets
        assert by_type["ids"] > 0
        assert by_type["l7"] > 0
        assert by_type["virus"] > 0

    def test_applications_identified(self, soak):
        net, scenario, report = soak
        identified = net.controller.log.query(
            kind=EventKind.PROTOCOL_IDENTIFIED)
        apps = {e.data["application"] for e in identified}
        assert "http" in apps or "bittorrent" in apps or "ssh" in apps

    def test_no_session_leaks(self, soak):
        """After everything quiesces, every session must drain."""
        net, scenario, report = soak
        net.run(20.0)  # idle timeouts + expiry sweep
        assert len(net.controller.sessions) == 0
        counts = net.controller.balancer.assigned_flow_counts()
        assert sum(counts.values()) == 0

    def test_nib_consistency_after_churn(self, soak):
        net, scenario, report = soak
        nib = net.controller.nib
        assert nib.is_full_mesh()
        # Every host record points at a real switch.
        for record in nib.hosts.values():
            assert record.dpid in nib.switches

    def test_event_log_replay_matches_live(self, soak):
        net, scenario, report = soak
        live = net.monitoring.snapshot()
        replayed = net.monitoring.replay(until=net.sim.now)
        assert sorted(replayed.switches) == sorted(live.switches)
        assert {m for m, u in replayed.users.items() if u.online} == \
            {m for m, u in live.users.items() if u.online}

    def test_elements_stayed_online(self, soak):
        net, scenario, report = soak
        assert net.controller.registry.summary()["online"] == 5
