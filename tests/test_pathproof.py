"""Unit tests for the SDNsec-style path-proof primitives
(repro.openflow.pathproof): descriptor binding, chained mark stamping,
and divergence attribution in verify_proof.
"""

from repro.openflow.pathproof import (
    PathDescriptor,
    PathTag,
    derive_switch_secret,
    expected_marks,
    verify_proof,
)

SECRET = "test-deployment-secret"
# The standard steered shape on the linear fabric: ingress, the
# waypoint switch twice (in, then out), egress.
PATH = (1, 2, 2, 3)


def descriptor(session_id=7, dpids=PATH):
    return PathDescriptor.for_path(SECRET, session_id, dpids)


def honest_marks(desc):
    """Stamp the chain exactly as an honest data plane would."""
    tag = PathTag(descriptor=desc)
    for dpid in desc.dpids:
        tag = tag.stamped(derive_switch_secret(SECRET, dpid), dpid)
    return tag.marks


class TestStamping:
    def test_stamped_chain_matches_expected(self):
        desc = descriptor()
        assert honest_marks(desc) == expected_marks(SECRET, desc)

    def test_stamping_is_immutable(self):
        desc = descriptor()
        tag = PathTag(descriptor=desc)
        stamped = tag.stamped(derive_switch_secret(SECRET, 1), 1)
        assert tag.marks == ()
        assert len(stamped.marks) == 1

    def test_marks_depend_on_session(self):
        a = expected_marks(SECRET, descriptor(session_id=1))
        b = expected_marks(SECRET, descriptor(session_id=2))
        assert a != b

    def test_waypoint_stamps_twice_distinctly(self):
        # The chained previous-mark input makes the waypoint's two
        # stamps differ even though key and dpid are identical.
        marks = expected_marks(SECRET, descriptor())
        assert marks[1] != marks[2]


class TestVerify:
    def test_honest_chain_is_valid(self):
        desc = descriptor()
        verdict = verify_proof(SECRET, desc, honest_marks(desc))
        assert verdict.valid
        assert verdict.reason == "ok"

    def test_skipped_waypoint_convicts_the_waypoint_switch(self):
        # The compromised switch stamps once instead of twice (it never
        # took the detour through its element): the chain is one mark
        # short and first diverges at the duplicate position.
        desc = descriptor()
        skipped = []
        prev_tag = PathTag(descriptor=desc)
        for dpid in (1, 2, 3):
            prev_tag = prev_tag.stamped(
                derive_switch_secret(SECRET, dpid), dpid
            )
        skipped = prev_tag.marks
        verdict = verify_proof(SECRET, desc, skipped)
        assert not verdict.valid
        assert verdict.break_index == 2
        assert verdict.offending_dpid == 2
        assert verdict.reason == "mark-mismatch"

    def test_truncated_chain_convicts_first_silent_switch(self):
        desc = descriptor()
        verdict = verify_proof(SECRET, desc, honest_marks(desc)[:2])
        assert not verdict.valid
        assert verdict.reason == "chain-truncated"
        assert verdict.break_index == 2
        assert verdict.offending_dpid == desc.dpids[2]

    def test_wrong_key_convicts_the_stamper(self):
        desc = descriptor()
        tag = PathTag(descriptor=desc)
        tag = tag.stamped(derive_switch_secret(SECRET, 1), 1)
        tag = tag.stamped(derive_switch_secret("other-secret", 2), 2)
        tag = tag.stamped(derive_switch_secret(SECRET, 2), 2)
        tag = tag.stamped(derive_switch_secret(SECRET, 3), 3)
        verdict = verify_proof(SECRET, desc, tag.marks)
        assert not verdict.valid
        assert verdict.break_index == 1
        assert verdict.offending_dpid == 2

    def test_overlong_chain_is_invalid(self):
        desc = descriptor()
        marks = honest_marks(desc) + (12345,)
        verdict = verify_proof(SECRET, desc, marks)
        assert not verdict.valid
        assert verdict.reason == "chain-overlong"
        assert verdict.offending_dpid == desc.dpids[-1]

    def test_forged_descriptor_rejected_outright(self):
        # A switch rewriting the expected path cannot mint the keyed
        # tag; the proof is rejected before any mark is consulted.
        desc = descriptor()
        forged = PathDescriptor(
            session_id=desc.session_id, dpids=(1, 3), tag=desc.tag
        )
        verdict = verify_proof(SECRET, forged, ())
        assert not verdict.valid
        assert verdict.reason == "descriptor-forged"
        assert verdict.offending_dpid == 1
