"""Unit tests for the deterministic controller event bus."""

from repro.core.bus import ArpIn, DataPacketIn, EventBus
from repro.obs import MetricsRegistry


class TestDispatchOrder:
    def test_subscription_order_is_dispatch_order(self):
        bus = EventBus()
        calls = []
        bus.subscribe(DataPacketIn, lambda e: calls.append("first"))
        bus.subscribe(DataPacketIn, lambda e: calls.append("second"))
        bus.subscribe(DataPacketIn, lambda e: calls.append("third"))
        bus.publish(DataPacketIn(packet_in=None))
        assert calls == ["first", "second", "third"]

    def test_priority_overrides_subscription_order(self):
        bus = EventBus()
        calls = []
        bus.subscribe(DataPacketIn, lambda e: calls.append("late"),
                      priority=10)
        bus.subscribe(DataPacketIn, lambda e: calls.append("early"),
                      priority=-10)
        bus.subscribe(DataPacketIn, lambda e: calls.append("normal"))
        bus.publish(DataPacketIn(packet_in=None))
        assert calls == ["early", "normal", "late"]

    def test_publish_returns_delivery_count(self):
        bus = EventBus()
        bus.subscribe(DataPacketIn, lambda e: None)
        bus.subscribe(DataPacketIn, lambda e: None)
        assert bus.publish(DataPacketIn(packet_in=None)) == 2
        assert bus.publish(ArpIn(packet_in=None, arp=None)) == 0

    def test_depth_first_nested_publish(self):
        """An event published from inside a handler is fully handled
        before the outer publish moves to its next subscriber."""
        bus = EventBus()
        calls = []

        def outer_first(event):
            calls.append("outer-first")
            bus.publish(ArpIn(packet_in=None, arp=None))

        bus.subscribe(DataPacketIn, outer_first)
        bus.subscribe(DataPacketIn, lambda e: calls.append("outer-second"))
        bus.subscribe(ArpIn, lambda e: calls.append("nested"))
        bus.publish(DataPacketIn(packet_in=None))
        assert calls == ["outer-first", "nested", "outer-second"]

    def test_type_dispatch_is_exact(self):
        bus = EventBus()
        calls = []
        bus.subscribe(ArpIn, lambda e: calls.append("arp"))
        bus.publish(DataPacketIn(packet_in=None))
        assert calls == []


class TestSubscriptionLifecycle:
    def test_unsubscribe(self):
        bus = EventBus()
        calls = []
        unsubscribe = bus.subscribe(DataPacketIn,
                                    lambda e: calls.append("gone"))
        bus.subscribe(DataPacketIn, lambda e: calls.append("kept"))
        unsubscribe()
        bus.publish(DataPacketIn(packet_in=None))
        assert calls == ["kept"]

    def test_unsubscribe_twice_is_noop(self):
        bus = EventBus()
        unsubscribe = bus.subscribe(DataPacketIn, lambda e: None)
        unsubscribe()
        unsubscribe()
        assert bus.publish(DataPacketIn(packet_in=None)) == 0

    def test_subscriptions_listing(self):
        bus = EventBus()

        def on_packet(event):
            pass

        bus.subscribe(DataPacketIn, on_packet, app="steering", priority=3)
        (sub,) = bus.subscriptions()
        assert sub.event == "DataPacketIn"
        assert sub.app == "steering"
        assert sub.handler == "on_packet"
        assert sub.priority == 3

    def test_subscriptions_sorted_by_event_name(self):
        bus = EventBus()
        bus.subscribe(DataPacketIn, lambda e: None, app="b")
        bus.subscribe(ArpIn, lambda e: None, app="a")
        events = [sub.event for sub in bus.subscriptions()]
        assert events == ["ArpIn", "DataPacketIn"]


class TestMetrics:
    def test_published_events_counted_per_type(self):
        registry = MetricsRegistry()
        bus = EventBus(metrics=registry)
        bus.publish(DataPacketIn(packet_in=None))
        bus.publish(DataPacketIn(packet_in=None))
        bus.publish(ArpIn(packet_in=None, arp=None))
        snap = registry.snapshot()
        assert snap.get(
            "bus.events_published", event="DataPacketIn"
        ).value == 2
        assert snap.get("bus.events_published", event="ArpIn").value == 1
