"""Unit tests for the deterministic controller event bus."""

from repro.core.bus import ArpIn, DataPacketIn, EventBus
from repro.obs import MetricsRegistry


class TestDispatchOrder:
    def test_subscription_order_is_dispatch_order(self):
        bus = EventBus()
        calls = []
        bus.subscribe(DataPacketIn, lambda e: calls.append("first"))
        bus.subscribe(DataPacketIn, lambda e: calls.append("second"))
        bus.subscribe(DataPacketIn, lambda e: calls.append("third"))
        bus.publish(DataPacketIn(packet_in=None))
        assert calls == ["first", "second", "third"]

    def test_priority_overrides_subscription_order(self):
        bus = EventBus()
        calls = []
        bus.subscribe(DataPacketIn, lambda e: calls.append("late"),
                      priority=10)
        bus.subscribe(DataPacketIn, lambda e: calls.append("early"),
                      priority=-10)
        bus.subscribe(DataPacketIn, lambda e: calls.append("normal"))
        bus.publish(DataPacketIn(packet_in=None))
        assert calls == ["early", "normal", "late"]

    def test_publish_returns_delivery_count(self):
        bus = EventBus()
        bus.subscribe(DataPacketIn, lambda e: None)
        bus.subscribe(DataPacketIn, lambda e: None)
        assert bus.publish(DataPacketIn(packet_in=None)) == 2
        assert bus.publish(ArpIn(packet_in=None, arp=None)) == 0

    def test_depth_first_nested_publish(self):
        """An event published from inside a handler is fully handled
        before the outer publish moves to its next subscriber."""
        bus = EventBus()
        calls = []

        def outer_first(event):
            calls.append("outer-first")
            bus.publish(ArpIn(packet_in=None, arp=None))

        bus.subscribe(DataPacketIn, outer_first)
        bus.subscribe(DataPacketIn, lambda e: calls.append("outer-second"))
        bus.subscribe(ArpIn, lambda e: calls.append("nested"))
        bus.publish(DataPacketIn(packet_in=None))
        assert calls == ["outer-first", "nested", "outer-second"]

    def test_type_dispatch_is_exact(self):
        bus = EventBus()
        calls = []
        bus.subscribe(ArpIn, lambda e: calls.append("arp"))
        bus.publish(DataPacketIn(packet_in=None))
        assert calls == []


class TestSubscriptionLifecycle:
    def test_unsubscribe(self):
        bus = EventBus()
        calls = []
        unsubscribe = bus.subscribe(DataPacketIn,
                                    lambda e: calls.append("gone"))
        bus.subscribe(DataPacketIn, lambda e: calls.append("kept"))
        unsubscribe()
        bus.publish(DataPacketIn(packet_in=None))
        assert calls == ["kept"]

    def test_unsubscribe_twice_is_noop(self):
        bus = EventBus()
        unsubscribe = bus.subscribe(DataPacketIn, lambda e: None)
        unsubscribe()
        unsubscribe()
        assert bus.publish(DataPacketIn(packet_in=None)) == 0

    def test_subscriptions_listing(self):
        bus = EventBus()

        def on_packet(event):
            pass

        bus.subscribe(DataPacketIn, on_packet, app="steering", priority=3)
        (sub,) = bus.subscriptions()
        assert sub.event == "DataPacketIn"
        assert sub.app == "steering"
        assert sub.handler == "on_packet"
        assert sub.priority == 3

    def test_subscriptions_sorted_by_event_name(self):
        bus = EventBus()
        bus.subscribe(DataPacketIn, lambda e: None, app="b")
        bus.subscribe(ArpIn, lambda e: None, app="a")
        events = [sub.event for sub in bus.subscriptions()]
        assert events == ["ArpIn", "DataPacketIn"]


class TestMetrics:
    def test_published_events_counted_per_type(self):
        registry = MetricsRegistry()
        bus = EventBus(metrics=registry)
        bus.publish(DataPacketIn(packet_in=None))
        bus.publish(DataPacketIn(packet_in=None))
        bus.publish(ArpIn(packet_in=None, arp=None))
        snap = registry.snapshot()
        assert snap.get(
            "bus.events_published", event="DataPacketIn"
        ).value == 2
        assert snap.get("bus.events_published", event="ArpIn").value == 1


class TestUnsubscribeDuringPublish:
    """A handler that unsubscribes mid-publish must neither skip nor
    double-dispatch the remaining subscribers of that same publish."""

    @staticmethod
    def _event():
        return DataPacketIn(packet_in=None)

    def test_self_unsubscribe_still_runs_remaining(self):
        bus = EventBus()
        calls = []
        unsubs = {}

        def make(name, self_unsubscribe=False):
            def handler(event):
                calls.append(name)
                if self_unsubscribe:
                    unsubs[name]()
            return handler

        unsubs["a"] = bus.subscribe(DataPacketIn, make("a"), app="a")
        unsubs["b"] = bus.subscribe(
            DataPacketIn, make("b", self_unsubscribe=True), app="b")
        unsubs["c"] = bus.subscribe(DataPacketIn, make("c"), app="c")
        assert bus.publish(self._event()) == 3
        assert calls == ["a", "b", "c"]
        calls.clear()
        assert bus.publish(self._event()) == 2
        assert calls == ["a", "c"]

    def test_unsubscribing_a_later_handler_skips_it_once(self):
        bus = EventBus()
        calls = []
        unsubs = {}

        def first(event):
            calls.append("first")
            unsubs["last"]()

        unsubs["first"] = bus.subscribe(DataPacketIn, first, app="first")
        unsubs["mid"] = bus.subscribe(
            DataPacketIn, lambda e: calls.append("mid"), app="mid")
        unsubs["last"] = bus.subscribe(
            DataPacketIn, lambda e: calls.append("last"), app="last")
        assert bus.publish(self._event()) == 2
        assert calls == ["first", "mid"]

    def test_unsubscribing_an_earlier_handler_does_not_redispatch(self):
        bus = EventBus()
        calls = []
        unsubs = {}

        def last(event):
            calls.append("last")
            unsubs["first"]()

        unsubs["first"] = bus.subscribe(
            DataPacketIn, lambda e: calls.append("first"), app="first")
        unsubs["mid"] = bus.subscribe(
            DataPacketIn, lambda e: calls.append("mid"), app="mid")
        unsubs["last"] = bus.subscribe(DataPacketIn, last, app="last")
        assert bus.publish(self._event()) == 3
        assert calls == ["first", "mid", "last"]
        calls.clear()
        bus.publish(self._event())
        assert calls == ["mid", "last"]

    def test_handler_subscribed_during_publish_waits_a_round(self):
        bus = EventBus()
        calls = []

        def recruiter(event):
            calls.append("recruiter")
            bus.subscribe(
                DataPacketIn, lambda e: calls.append("recruit"),
                app="recruit")

        bus.subscribe(DataPacketIn, recruiter, app="recruiter")
        assert bus.publish(self._event()) == 1
        assert calls == ["recruiter"]
        calls.clear()
        assert bus.publish(self._event()) == 2
        assert calls == ["recruiter", "recruit"]

    def test_unsubscribe_app_purges_every_edge(self):
        bus = EventBus()
        calls = []
        bus.subscribe(DataPacketIn, lambda e: calls.append("x1"), app="x")
        bus.subscribe(ArpIn, lambda e: calls.append("x2"), app="x")
        bus.subscribe(DataPacketIn, lambda e: calls.append("y"), app="y")
        assert bus.unsubscribe_app("x") == 2
        assert bus.publish(self._event()) == 1
        bus.publish(ArpIn(packet_in=None, arp=None))
        assert calls == ["y"]
        assert bus.unsubscribe_app("x") == 0

    def test_property_randomized_interleavings(self):
        # Property test: across randomized subscribe/unsubscribe actions
        # performed *inside* handlers, every publish satisfies the
        # dispatch contract:
        #   1. no handler runs twice in one publish;
        #   2. a handler live at publish start runs unless unsubscribed
        #      earlier in that same publish;
        #   3. nothing runs after its own unsubscription;
        #   4. handlers subscribed during a publish sit that one out.
        import random

        for seed in range(30):
            rng = random.Random(seed)
            bus = EventBus()
            unsubs = {}   # name -> (unsubscribe, live?)
            counter = [0]
            trace = []

            def add_handler(name):
                def handler(event, _name=name):
                    trace.append(("run", _name))
                    roll = rng.random()
                    if roll < 0.3 and unsubs:
                        victim = rng.choice(sorted(unsubs))
                        unsubs.pop(victim)()
                        trace.append(("unsub", victim))
                    elif roll < 0.5:
                        counter[0] += 1
                        add_handler(f"h{counter[0]}")
                unsubs[name] = bus.subscribe(
                    DataPacketIn, handler, app=name)

            for _ in range(rng.randint(2, 6)):
                counter[0] += 1
                add_handler(f"h{counter[0]}")

            for _ in range(8):
                live_at_start = set(unsubs)
                trace.clear()
                bus.publish(self._event())
                ran = [name for op, name in trace if op == "run"]
                removed_at = {
                    name: i for i, (op, name) in enumerate(trace)
                    if op == "unsub"
                }
                # (1) exactly-once per publish
                assert len(ran) == len(set(ran)), (seed, trace)
                for name in live_at_start:
                    if name not in removed_at:
                        # (2) survivors all ran
                        assert name in ran, (seed, name, trace)
                for i, (op, name) in enumerate(trace):
                    if op == "run":
                        # (3) never dispatched after removal
                        assert removed_at.get(name, i) >= i, \
                            (seed, name, trace)
                        # (4) only start-snapshot handlers ran
                        assert name in live_at_start, (seed, name, trace)
                if not unsubs:
                    break
