"""Unit tests for nodes, ports and capacity-limited links."""

import pytest

from repro.net import packet as pkt
from repro.net.node import Node, connect
from repro.net.packet import Ethernet


class Sink(Node):
    """Records every received frame with its arrival time."""

    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def receive(self, frame, in_port):
        self.received.append((self.sim.now, frame, in_port))


def frame_of_size(size: int) -> Ethernet:
    return pkt.make_udp("m1", "m2", "1.1.1.1", "2.2.2.2", 1, 2, size=size)


class TestWiring:
    def test_connect_allocates_ports(self, sim):
        a, b = Sink(sim, "a"), Sink(sim, "b")
        link = connect(sim, a, b)
        assert a.port(1).link is link and b.port(1).link is link
        assert a.port(1).peer() is b.port(1)

    def test_connect_explicit_ports(self, sim):
        a, b = Sink(sim, "a"), Sink(sim, "b")
        connect(sim, a, b, port_a=5, port_b=7)
        assert a.port(5).is_attached and b.port(7).is_attached

    def test_double_wiring_rejected(self, sim):
        a, b, c = Sink(sim, "a"), Sink(sim, "b"), Sink(sim, "c")
        connect(sim, a, b, port_a=1)
        with pytest.raises(ValueError):
            connect(sim, a, c, port_a=1)

    def test_next_free_port_skips_attached(self, sim):
        a, b, c = Sink(sim, "a"), Sink(sim, "b"), Sink(sim, "c")
        connect(sim, a, b)
        connect(sim, a, c)
        assert a.port(1).is_attached and a.port(2).is_attached

    def test_send_on_unwired_port_returns_false(self, sim):
        a = Sink(sim, "a")
        assert a.send(frame_of_size(100), 3) is False


class TestDelays:
    def test_propagation_plus_serialization(self, sim):
        a, b = Sink(sim, "a"), Sink(sim, "b")
        connect(sim, a, b, bandwidth_bps=1e6, delay_s=0.010)
        a.send(frame_of_size(1250), 1)  # 1250 B = 10 kbit -> 10 ms tx
        sim.run()
        arrival, _, _ = b.received[0]
        assert arrival == pytest.approx(0.010 + 0.010)

    def test_back_to_back_frames_serialize(self, sim):
        a, b = Sink(sim, "a"), Sink(sim, "b")
        connect(sim, a, b, bandwidth_bps=1e6, delay_s=0.0)
        a.send(frame_of_size(1250), 1)
        a.send(frame_of_size(1250), 1)
        sim.run()
        times = [t for t, _, _ in b.received]
        assert times == [pytest.approx(0.010), pytest.approx(0.020)]

    def test_directions_are_independent(self, sim):
        a, b = Sink(sim, "a"), Sink(sim, "b")
        connect(sim, a, b, bandwidth_bps=1e6, delay_s=0.0)
        a.send(frame_of_size(1250), 1)
        b.send(frame_of_size(1250), 1)
        sim.run()
        assert b.received[0][0] == pytest.approx(0.010)
        assert a.received[0][0] == pytest.approx(0.010)

    def test_throughput_matches_bandwidth(self, sim):
        a, b = Sink(sim, "a"), Sink(sim, "b")
        connect(sim, a, b, bandwidth_bps=100e6, delay_s=0.0,
                queue_packets=10_000)
        for _ in range(1000):
            a.send(frame_of_size(1500), 1)
        sim.run()
        last_arrival = b.received[-1][0]
        rate = 1000 * 1500 * 8 / last_arrival
        assert rate == pytest.approx(100e6, rel=0.01)


class TestQueueing:
    def test_queue_overflow_drops(self, sim):
        a, b = Sink(sim, "a"), Sink(sim, "b")
        link = connect(sim, a, b, bandwidth_bps=1e6, delay_s=0.0,
                       queue_packets=5)
        for _ in range(10):
            a.send(frame_of_size(1250), 1)
        sim.run()
        assert len(b.received) == 5
        assert link.stats(a.port(1))["dropped"] == 5
        assert a.port(1).tx_drops == 5

    def test_queue_drains_over_time(self, sim):
        a, b = Sink(sim, "a"), Sink(sim, "b")
        connect(sim, a, b, bandwidth_bps=1e6, delay_s=0.0, queue_packets=2)
        a.send(frame_of_size(1250), 1)
        a.send(frame_of_size(1250), 1)
        sim.run()
        a.send(frame_of_size(1250), 1)
        sim.run()
        assert len(b.received) == 3


class TestCountersAndFaults:
    def test_port_counters(self, sim):
        a, b = Sink(sim, "a"), Sink(sim, "b")
        connect(sim, a, b)
        a.send(frame_of_size(500), 1)
        sim.run()
        assert a.port(1).tx_packets == 1 and a.port(1).tx_bytes == 500
        assert b.port(1).rx_packets == 1 and b.port(1).rx_bytes == 500

    def test_link_down_drops_frames(self, sim):
        a, b = Sink(sim, "a"), Sink(sim, "b")
        link = connect(sim, a, b)
        link.set_up(False)
        assert link.transmit(a.port(1), frame_of_size(100)) is False
        sim.run()
        assert b.received == []

    def test_link_down_mid_flight_loses_frame(self, sim):
        a, b = Sink(sim, "a"), Sink(sim, "b")
        link = connect(sim, a, b, delay_s=1.0)
        a.send(frame_of_size(100), 1)
        sim.schedule(0.5, link.set_up, False)
        sim.run()
        assert b.received == []

    def test_utilization_tracks_busy_fraction(self, sim):
        a, b = Sink(sim, "a"), Sink(sim, "b")
        link = connect(sim, a, b, bandwidth_bps=1e6, delay_s=0.0,
                       queue_packets=100)
        for _ in range(4):  # 4 x 10ms of tx time
            a.send(frame_of_size(1250), 1)
        sim.run(until=0.1)
        assert link.utilization(a.port(1), 0.0) == pytest.approx(0.4)

    def test_flood_skips_in_port_and_clones(self, sim):
        hub = Sink(sim, "hub")
        leaves = [Sink(sim, f"l{i}") for i in range(3)]
        for leaf in leaves:
            connect(sim, hub, leaf)
        original = frame_of_size(100)
        sent = hub.flood(original, in_port=1)
        sim.run()
        assert sent == 2
        assert leaves[0].received == []
        received_ids = {
            frame.packet_id
            for leaf in leaves[1:]
            for _, frame, _ in leaf.received
        }
        assert original.packet_id not in received_ids
        assert len(received_ids) == 2

    def test_bad_link_parameters_rejected(self, sim):
        a, b = Sink(sim, "a"), Sink(sim, "b")
        with pytest.raises(ValueError):
            connect(sim, a, b, bandwidth_bps=0)
        with pytest.raises(ValueError):
            connect(sim, a, b, delay_s=-1.0)
