"""Tests for the policy compiler, conflict detector and the
transactional PolicyTable API (ISSUE 6)."""

import pytest

from repro.core.policy import (
    FlowSelector,
    Policy,
    PolicyAction,
    PolicyTable,
    cidr_contains,
    ip_to_int,
    parse_cidr,
)
from repro.core.policy_compiler import (
    CompiledPolicyTable,
    PolicyConflictError,
    PolicyIntent,
    compile_intents,
    intent_from_dict,
    normalize_intent,
)
from repro.net.packet import FlowNineTuple


def flow(src="10.0.0.1", dst="10.0.0.2", proto=6, sport=1234, dport=80):
    return FlowNineTuple(None, "aa:aa", "bb:bb", 0x0800,
                         src, dst, proto, sport, dport)


def intent(name, action=PolicyAction.ALLOW, **kwargs):
    return PolicyIntent(name=name, action=action, **kwargs)


class TestIpHelpers:
    def test_ip_to_int(self):
        assert ip_to_int("0.0.0.0") == 0
        assert ip_to_int("10.0.0.1") == (10 << 24) + 1
        assert ip_to_int("255.255.255.255") == 0xFFFFFFFF

    @pytest.mark.parametrize("bad", ["10.0.0", "10.0.0.256", "a.b.c.d",
                                     "10.0.0.1.2", ""])
    def test_ip_to_int_rejects(self, bad):
        with pytest.raises(ValueError):
            ip_to_int(bad)

    def test_parse_cidr(self):
        assert parse_cidr("10.1.0.0/16") == (ip_to_int("10.1.0.0"), 16)
        assert parse_cidr("0.0.0.0/0") == (0, 0)

    @pytest.mark.parametrize("bad", ["10.1.0.0", "10.1.0.0/33",
                                     "10.1.0.1/16", "10.1.0.0/x"])
    def test_parse_cidr_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_cidr(bad)

    def test_cidr_contains(self):
        assert cidr_contains("10.1.0.0/16", "10.1.255.255")
        assert not cidr_contains("10.1.0.0/16", "10.2.0.0")
        assert not cidr_contains("10.1.0.0/16", None)
        assert not cidr_contains("10.1.0.0/16", "gateway")
        assert cidr_contains("0.0.0.0/0", "192.168.1.1")


class TestIntents:
    def test_zone_folds_into_selector(self):
        policy = normalize_intent(intent(
            "z", action=PolicyAction.DROP, src_zone="10.4.0.0/16"))
        assert policy.selector.src_cidr == "10.4.0.0/16"
        assert policy.selector.matches(flow(src="10.4.9.9"))
        assert not policy.selector.matches(flow(src="10.5.0.1"))

    def test_zone_and_cidr_both_set_rejected(self):
        with pytest.raises(ValueError, match="both"):
            normalize_intent(intent(
                "z", src_zone="10.4.0.0/16",
                selector=FlowSelector(src_cidr="10.5.0.0/16")))

    def test_bad_zone_rejected_at_definition(self):
        with pytest.raises(ValueError):
            intent("z", src_zone="10.4.0.1/16")  # host bits set

    def test_intent_from_dict_strict(self):
        with pytest.raises(ValueError, match="unknown intent field"):
            intent_from_dict({"name": "x", "action": "allow",
                              "zone": "10.0.0.0/8"})
        with pytest.raises(ValueError, match="unknown selector field"):
            intent_from_dict({"name": "x", "action": "allow",
                              "selector": {"dst_planet": "mars"}})
        with pytest.raises(ValueError, match="unknown action"):
            intent_from_dict({"name": "x", "action": "quarantine"})
        with pytest.raises(ValueError, match="name"):
            intent_from_dict({"action": "allow"})

    def test_duplicate_intent_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            compile_intents([intent("a"), intent("a")])


class TestConflictTriads:
    """The shadow/contradiction/redundancy taxonomy."""

    def test_shadowed_higher_priority_covers_different_effect(self):
        result = compile_intents([
            intent("broad-drop", PolicyAction.DROP,
                   src_zone="10.9.0.0/16", priority=300),
            intent("narrow-allow", PolicyAction.ALLOW,
                   src_zone="10.9.4.0/24", priority=200),
        ])
        assert not result.ok
        (finding,) = result.findings
        assert finding.kind == "shadowed"
        assert finding.severity == "error"
        # Both policies named, winner first, overlap described.
        assert finding.policies == ("broad-drop", "narrow-allow")
        assert "10.9.4.0/24" in finding.overlap

    def test_contradictory_partial_overlap_equal_priority(self):
        result = compile_intents([
            intent("allow-web", PolicyAction.ALLOW, dst_zone="10.2.0.0/16",
                   selector=FlowSelector(nw_proto=6, tp_dst=80)),
            intent("block-web", PolicyAction.DROP, src_zone="10.2.128.0/17",
                   selector=FlowSelector(nw_proto=6, tp_dst=80)),
        ])
        assert not result.ok
        (finding,) = result.findings
        assert finding.kind == "contradictory"
        assert set(finding.policies) == {"allow-web", "block-web"}
        assert "10.2.128.0/17" in finding.overlap

    def test_redundant_same_effect_is_warning_only(self):
        result = compile_intents([
            intent("wide", PolicyAction.DROP, src_zone="10.9.0.0/16",
                   priority=300),
            intent("dup", PolicyAction.DROP, src_zone="10.9.4.0/24",
                   priority=200),
        ])
        assert result.ok  # warnings don't reject
        (finding,) = result.findings
        assert finding.kind == "redundant"
        assert finding.severity == "warning"

    def test_narrow_exception_over_broad_rule_is_legitimate(self):
        # Higher-priority narrow ALLOW over a broad lower-priority DROP:
        # the standard exception idiom, not a conflict.
        result = compile_intents([
            intent("exception", PolicyAction.ALLOW,
                   src_zone="10.9.4.0/24", priority=300),
            intent("broad-drop", PolicyAction.DROP,
                   src_zone="10.9.0.0/16", priority=200),
        ])
        assert result.ok
        assert result.findings == []

    def test_disjoint_policies_never_flagged(self):
        result = compile_intents([
            intent("a", PolicyAction.DROP, src_zone="10.1.0.0/16"),
            intent("b", PolicyAction.ALLOW, src_zone="10.2.0.0/16"),
        ])
        assert result.findings == []

    def test_chain_vs_allow_contradiction(self):
        result = compile_intents([
            intent("inspect", PolicyAction.CHAIN, dst_zone="10.3.0.0/16",
                   service_chain=("ids",)),
            intent("fast-path", PolicyAction.ALLOW, src_zone="10.4.0.0/16"),
        ])
        assert not result.ok
        assert result.errors[0].kind == "contradictory"

    def test_unsatisfiable_selector_warns(self):
        result = compile_intents([
            intent("never", PolicyAction.DROP, selector=FlowSelector(
                src_ip="10.5.0.1", src_cidr="10.6.0.0/16")),
        ])
        assert result.ok
        (finding,) = result.findings
        assert finding.kind == "unsatisfiable"

    def test_unknown_service_type_is_error(self):
        result = compile_intents(
            [intent("inspect", PolicyAction.CHAIN, service_chain=("warp",),
                    dst_zone="10.3.0.0/16")],
            service_types={"ids", "l7"},
        )
        assert not result.ok
        assert result.errors[0].kind == "unknown-service"
        assert "warp" in result.errors[0].detail

    def test_report_names_both_policies_and_overlap(self):
        result = compile_intents([
            intent("allow-web", PolicyAction.ALLOW, dst_zone="10.2.0.0/16"),
            intent("block-web", PolicyAction.DROP, dst_zone="10.2.0.0/16"),
        ])
        report = result.report()
        assert "allow-web" in report and "block-web" in report
        assert "REJECTED" in report
        document = result.to_dict()
        assert document["ok"] is False
        assert document["findings"][0]["policies"] == [
            "allow-web", "block-web"]


class TestCompiledTable:
    def test_match_semantics_and_get(self):
        result = compile_intents([
            intent("first", PolicyAction.DROP, src_zone="10.1.0.0/16",
                   priority=200),
            intent("second", PolicyAction.ALLOW, priority=100),
        ])
        table = result.table
        hit, scanned = table.match(flow(src="10.1.0.5"))
        assert hit.name == "first" and scanned == 1
        hit, scanned = table.match(flow(src="10.2.0.5"))
        assert hit.name == "second" and scanned == 2
        assert table.get("first").action is PolicyAction.DROP
        assert table.get(None) is None
        assert table.effective_action(flow(src="10.1.0.1")) \
            is PolicyAction.DROP

    def test_compiled_default_cannot_chain(self):
        with pytest.raises(ValueError):
            CompiledPolicyTable([], default_action=PolicyAction.CHAIN)


class TestTransactions:
    def pol(self, name, priority=100, action=PolicyAction.ALLOW, **sel):
        return Policy(name=name, selector=FlowSelector(**sel),
                      action=action, priority=priority)

    def test_commit_is_one_version_bump(self):
        table = PolicyTable()
        txn = table.begin()
        txn.add(self.pol("a"))
        txn.add(self.pol("b"))
        txn.remove("a")
        commit = txn.commit()
        assert table.version == 1
        assert commit.version == 1
        assert commit.added == ("b",)
        assert commit.removed == ()
        assert [p.name for p in table] == ["b"]

    def test_staged_changes_invisible_until_commit(self):
        table = PolicyTable()
        txn = table.begin()
        txn.add(self.pol("a"))
        assert len(table) == 0 and table.version == 0
        txn.commit()
        assert len(table) == 1 and table.version == 1

    def test_abort_discards(self):
        table = PolicyTable()
        txn = table.begin()
        txn.add(self.pol("a"))
        txn.abort()
        assert len(table) == 0 and table.version == 0
        with pytest.raises(RuntimeError):
            txn.commit()

    def test_verified_commit_rejects_and_leaves_table_untouched(self):
        table = PolicyTable()
        table.begin().add(self.pol("keep", dst_ip="1.2.3.4")).commit()
        version = table.version
        txn = table.begin()
        txn.add(self.pol("allow-all", action=PolicyAction.ALLOW))
        txn.add(self.pol("drop-all", action=PolicyAction.DROP))
        with pytest.raises(PolicyConflictError) as exc:
            txn.commit(verify=True)
        assert "allow-all" in str(exc.value)
        # The live table never saw the staged rows.
        assert [p.name for p in table] == ["keep"]
        assert table.version == version

    def test_replace_all_computes_added_removed(self):
        table = PolicyTable()
        table.begin().add(self.pol("a")).add(self.pol("b")).commit()
        txn = table.begin(source="reload")
        txn.replace_all([self.pol("b"), self.pol("c")])
        commit = txn.commit()
        assert commit.added == ("c",)
        assert commit.removed == ("a",)
        assert commit.source == "reload"
        assert table.version == 2

    def test_commit_callbacks_fire_once_per_commit(self):
        table = PolicyTable()
        commits = []
        unsubscribe = table.on_commit(commits.append)
        table.begin().add(self.pol("a")).commit()
        assert len(commits) == 1 and commits[0].version == 1
        unsubscribe()
        table.begin().add(self.pol("b")).commit()
        assert len(commits) == 1

    def test_compat_shims_route_through_transactions(self):
        table = PolicyTable()
        commits = []
        table.on_commit(commits.append)
        table.add(self.pol("a"))
        assert table.version == 1 and len(commits) == 1
        assert table.deprecated_calls["add"] == 1
        with pytest.raises(ValueError):
            table.add(self.pol("a"))
        assert table.remove("missing") is None
        assert table.version == 1  # no-op removal: no bump, no commit
        assert len(commits) == 1
        removed = table.remove("a")
        assert removed.name == "a"
        assert table.version == 2
        assert table.deprecated_calls["remove"] == 2

    def test_get_uses_name_index(self):
        table = PolicyTable()
        txn = table.begin()
        for index in range(50):
            txn.add(self.pol(f"p{index}", priority=index))
        txn.commit()
        assert table.get("p17").name == "p17"
        assert table.get("nope") is None
        # The index tracks transactional removals.
        txn = table.begin()
        txn.remove("p17")
        txn.commit()
        assert table.get("p17") is None

    def test_apply_compiled_resets_hits_and_preserves_order(self):
        result = compile_intents([
            intent("hi", PolicyAction.DROP, priority=200,
                   src_zone="10.1.0.0/16"),
            intent("lo", PolicyAction.ALLOW, priority=100),
        ])
        for policy in result.table:
            policy.hits = 7  # dirty the artifact
        table = PolicyTable()
        commit = table.apply_compiled(result.table)
        assert commit.version == 1
        assert [p.name for p in table] == ["hi", "lo"]
        assert all(p.hits == 0 for p in table)
        # The artifact's own rows were copied, not aliased.
        table.record_hit(table.get("hi"))
        assert result.table.get("hi").hits == 7

    def test_validate_reports_without_committing(self):
        table = PolicyTable()
        txn = table.begin()
        txn.add(self.pol("allow-all", action=PolicyAction.ALLOW))
        txn.add(self.pol("drop-all", action=PolicyAction.DROP))
        findings = txn.validate()
        assert any(f.severity == "error" for f in findings)
        assert table.version == 0
        txn.commit()  # unverified commit still allowed (legacy semantics)
        assert table.version == 1


class TestHotReload:
    """The acceptance scenario: a live deployment hot-swaps policy
    atomically without dropping established sessions; a conflicting
    document is rejected while the committed table keeps serving."""

    GATEWAY_IP = "10.255.255.254"

    def build_net(self):
        from repro import build_livesec_network

        table = PolicyTable()
        table.begin(source="test").add(Policy(
            name="inspect-internet",
            selector=FlowSelector(dst_ip=self.GATEWAY_IP),
            action=PolicyAction.CHAIN,
            service_chain=("ids",),
        )).commit()
        net = build_livesec_network(
            topology="linear", policies=table, num_as=2, hosts_per_as=2,
        )
        net.add_element("ids", net.topology.as_switches[0])
        net.start()
        return net

    def start_traffic(self, net):
        from repro.workloads import HttpFlow

        hosts = [
            h for h in net.topology.hosts if h is not net.topology.gateway
        ]
        return [
            HttpFlow(net.sim, host, self.GATEWAY_IP, rate_bps=2e6,
                     packet_size=1500).start(delay_s=offset * 0.05)
            for offset, host in enumerate(hosts)
        ]

    def test_clean_reload_swaps_atomically(self):
        from repro.core.bus import PolicyReloaded
        from repro.core.events import EventKind

        net = self.build_net()
        controller = net.controller
        reload_events = []
        controller.bus.subscribe(
            PolicyReloaded, reload_events.append, app="test")
        flows = self.start_traffic(net)
        net.run(1.0)
        sessions_before = len(controller.sessions)
        assert sessions_before > 0
        version_before = controller.policies.version
        steering = controller.app("steering")
        assert len(steering.rule_cache) > 0  # warm cache to invalidate
        invalidations_before = steering.rule_cache.invalidations
        gateway_rx_before = net.gateway.rx_bytes

        commit = net.reload_policies({
            "schema_version": 2,
            "default_action": "allow",
            "intents": [
                {"name": "inspect-internet", "action": "chain",
                 "service_chain": ["ids"], "priority": 200,
                 "selector": {"dst_ip": self.GATEWAY_IP}},
                {"name": "quarantine-lab", "action": "drop",
                 "src_zone": "10.66.0.0/16", "priority": 150},
            ],
        })

        # Exactly one version bump and one PolicyReloaded event.
        assert controller.policies.version == version_before + 1
        assert len(reload_events) == 1
        assert reload_events[0].commit is commit
        assert commit.added == ("quarantine-lab",)
        # The steering path cache was invalidated wholesale...
        assert steering.rule_cache.invalidations == invalidations_before + 1
        assert len(steering.rule_cache) == 0
        # ...but established sessions survived the swap.
        assert len(controller.sessions) == sessions_before
        net.run(1.0)
        assert net.gateway.rx_bytes > gateway_rx_before  # traffic flows on
        assert len(controller.log.query(
            kind=EventKind.POLICY_CHANGED)) == 1
        for flow in flows:
            flow.stop()

    def test_rejected_reload_leaves_table_serving(self):
        net = self.build_net()
        controller = net.controller
        flows = self.start_traffic(net)
        net.run(1.0)
        version_before = controller.policies.version
        names_before = [p.name for p in controller.policies]
        gateway_rx_before = net.gateway.rx_bytes

        with pytest.raises(PolicyConflictError) as exc:
            net.reload_policies({
                "schema_version": 2,
                "intents": [
                    {"name": "allow-web", "action": "allow",
                     "dst_zone": "10.2.0.0/16",
                     "selector": {"nw_proto": 6, "tp_dst": 80}},
                    {"name": "block-web", "action": "drop",
                     "src_zone": "10.2.128.0/17",
                     "selector": {"nw_proto": 6, "tp_dst": 80}},
                ],
            })
        # The structured report names both policies and the overlap.
        (finding,) = exc.value.findings
        assert set(finding.policies) == {"allow-web", "block-web"}
        assert "10.2.128.0/17" in finding.overlap
        # Nothing changed; the committed table keeps serving.
        assert controller.policies.version == version_before
        assert [p.name for p in controller.policies] == names_before
        net.run(1.0)
        assert net.gateway.rx_bytes > gateway_rx_before
        for flow in flows:
            flow.stop()

    def test_reload_rejects_unknown_service_chain(self):
        net = self.build_net()
        with pytest.raises(PolicyConflictError) as exc:
            net.reload_policies({
                "schema_version": 2,
                "intents": [
                    {"name": "inspect", "action": "chain",
                     "service_chain": ["warp-scrubber"],
                     "selector": {"dst_ip": self.GATEWAY_IP}},
                ],
            })
        assert exc.value.findings[0].kind == "unknown-service"

    def test_deployment_builds_from_policy_file(self, tmp_path):
        import json

        from repro import build_livesec_network

        path = str(tmp_path / "intents.json")
        with open(path, "w") as handle:
            json.dump({
                "schema_version": 2,
                "intents": [
                    {"name": "no-gw", "action": "drop",
                     "selector": {"dst_ip": self.GATEWAY_IP}},
                ],
            }, handle)
        net = build_livesec_network(
            topology="linear", policy_file=path, num_as=2, hosts_per_as=1,
        )
        assert net.controller.policies.get("no-gw") is not None
        with pytest.raises(ValueError, match="not both"):
            build_livesec_network(
                topology="linear", policy_file=path,
                policies=PolicyTable(),
            )

    def test_deployment_rejects_conflicting_policy_file(self, tmp_path):
        import json

        from repro import build_livesec_network
        from repro.core.policy_io import PolicyFormatError

        path = str(tmp_path / "bad.json")
        with open(path, "w") as handle:
            json.dump({
                "schema_version": 2,
                "intents": [
                    {"name": "allow-all", "action": "allow"},
                    {"name": "drop-all", "action": "drop"},
                ],
            }, handle)
        with pytest.raises(PolicyFormatError):
            build_livesec_network(topology="linear", policy_file=path)


class TestMetrics:
    def test_attach_metrics_exports_version_and_deprecation(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        table = PolicyTable()
        table.attach_metrics(registry)
        table.add(Policy(name="a", selector=FlowSelector(),
                         action=PolicyAction.ALLOW))
        assert registry.get("policy.version").snapshot().value == 1.0
        assert registry.get("policy.rows").snapshot().value == 1.0
        assert registry.get(
            "policy.deprecated_api_calls", op="add"
        ).snapshot().value == 1.0
        assert registry.get(
            "policy.deprecated_api_calls", op="remove"
        ).snapshot().value == 0.0
