"""Unit tests for the Network Information Base."""

import pytest

from repro.core.nib import NetworkInformationBase


@pytest.fixture
def nib():
    return NetworkInformationBase(host_timeout_s=10.0)


class TestHosts:
    def test_learn_new_host(self, nib):
        record, is_new = nib.learn_host("m1", "10.0.0.1", dpid=1, port=2,
                                        now=5.0)
        assert is_new
        assert record.first_seen == record.last_seen == 5.0
        assert nib.host_by_mac("m1") is record
        assert nib.host_by_ip("10.0.0.1") is record

    def test_refresh_updates_last_seen_only(self, nib):
        nib.learn_host("m1", "10.0.0.1", dpid=1, port=2, now=5.0)
        record, is_new = nib.learn_host("m1", None, dpid=1, port=2, now=9.0)
        assert not is_new
        assert record.first_seen == 5.0 and record.last_seen == 9.0
        assert record.ip == "10.0.0.1"  # ip preserved on refresh

    def test_move_is_reported_as_new(self, nib):
        nib.learn_host("m1", "10.0.0.1", dpid=1, port=2, now=5.0)
        record, is_new = nib.learn_host("m1", None, dpid=3, port=7, now=6.0)
        assert is_new  # VM migration: location changed
        assert record.dpid == 3 and record.port == 7
        assert record.first_seen == 5.0  # identity preserved

    def test_ip_update_on_refresh(self, nib):
        nib.learn_host("m1", None, dpid=1, port=2, now=1.0)
        record, _ = nib.learn_host("m1", "10.0.0.9", dpid=1, port=2, now=2.0)
        assert record.ip == "10.0.0.9"
        assert nib.host_by_ip("10.0.0.9") is record

    def test_element_flag_is_sticky(self, nib):
        nib.learn_host("m1", None, dpid=1, port=2, now=1.0, is_element=True)
        record, _ = nib.learn_host("m1", None, dpid=1, port=2, now=2.0)
        assert record.is_element

    def test_expiry_removes_stale_hosts(self, nib):
        nib.learn_host("old", None, dpid=1, port=1, now=0.0)
        nib.learn_host("new", None, dpid=1, port=2, now=8.0)
        expired = nib.expire_hosts(now=11.0)
        assert [r.mac for r in expired] == ["old"]
        assert nib.host_by_mac("old") is None
        assert nib.host_by_mac("new") is not None

    def test_remove_host_clears_ip_index(self, nib):
        nib.learn_host("m1", "10.0.0.1", dpid=1, port=2, now=1.0)
        nib.remove_host("m1")
        assert nib.host_by_ip("10.0.0.1") is None

    def test_user_and_element_views(self, nib):
        nib.learn_host("u1", None, dpid=1, port=1, now=0.0)
        nib.learn_host("e1", None, dpid=1, port=2, now=0.0, is_element=True)
        assert [r.mac for r in nib.user_hosts()] == ["u1"]
        assert [r.mac for r in nib.element_hosts()] == ["e1"]


class TestLinks:
    def test_learn_and_query(self, nib):
        nib.learn_link(1, 5, 2, 6, now=0.0)
        link = nib.link(1, 2)
        assert link.src_port == 5 and link.dst_port == 6
        assert nib.link(2, 1) is None  # unidirectional

    def test_uplink_port_set_accumulates(self, nib):
        nib.learn_link(1, 1, 2, 1, now=0.0)
        nib.learn_link(1, 2, 2, 2, now=0.0)  # second (redundant) uplink
        assert nib.uplink_ports(1) == frozenset({1, 2})
        assert nib.uplink_port(1) == 1  # deterministic primary

    def test_canonical_mapping_is_lowest_pair(self, nib):
        nib.learn_link(1, 2, 2, 2, now=0.0)
        nib.learn_link(1, 1, 2, 1, now=1.0)
        nib.learn_link(1, 2, 2, 2, now=2.0)  # re-seen: must not usurp
        link = nib.link(1, 2)
        assert (link.src_port, link.dst_port) == (1, 1)

    def test_rebuild_links_drops_stale_uplinks(self, nib):
        nib.learn_link(1, 1, 2, 1, now=0.0)
        nib.learn_link(1, 2, 2, 2, now=0.0)

        class FakeLink:
            def __init__(self, sd, sp, dd, dp):
                self.src_dpid, self.src_port = sd, sp
                self.dst_dpid, self.dst_port = dd, dp

        nib.rebuild_links([FakeLink(1, 2, 2, 2)], now=5.0)
        assert nib.uplink_ports(1) == frozenset({2})
        assert nib.uplink_port(1) == 2

    def test_uplink_unknown_before_discovery(self, nib):
        assert nib.uplink_port(9) is None
        assert nib.uplink_ports(9) == frozenset()


class TestSwitchesAndMesh:
    def test_full_mesh_detection(self, nib):
        nib.add_switch(1, "a", (1,), now=0.0)
        nib.add_switch(2, "b", (1,), now=0.0)
        assert not nib.is_full_mesh()
        nib.learn_link(1, 1, 2, 1, now=0.0)
        assert not nib.is_full_mesh()
        nib.learn_link(2, 1, 1, 1, now=0.0)
        assert nib.is_full_mesh()

    def test_single_switch_is_trivially_full_mesh(self, nib):
        nib.add_switch(1, "a", (1,), now=0.0)
        assert nib.is_full_mesh()

    def test_remove_switch_cascades(self, nib):
        nib.add_switch(1, "a", (1,), now=0.0)
        nib.add_switch(2, "b", (1,), now=0.0)
        nib.learn_link(1, 1, 2, 1, now=0.0)
        nib.learn_host("m1", None, dpid=1, port=2, now=0.0)
        nib.remove_switch(1)
        assert nib.link(1, 2) is None
        assert nib.host_by_mac("m1") is None
        assert 1 not in nib.switches

    def test_summary(self, nib):
        nib.add_switch(1, "a", (1,), now=0.0)
        nib.learn_host("m1", None, dpid=1, port=1, now=0.0, is_element=True)
        summary = nib.summary()
        assert summary["switches"] == 1
        assert summary["hosts"] == 1
        assert summary["elements"] == 1
