"""Edge cases in the controller's packet-in handling."""


from repro import Policy, PolicyTable, build_livesec_network
from repro.core import messages as svcmsg
from repro.core.policy import FlowSelector, PolicyAction
from repro.net import packet as pkt
from repro.workloads import AttackWebFlow, CbrUdpFlow

GATEWAY_IP = "10.255.255.254"


class TestUnknownDestinations:
    def test_packet_to_unknown_ip_falls_back_to_periphery_flood(
            self, small_net):
        src = small_net.host("h1_1")
        src.arp_timeout_s = 1e9
        # Forge an ARP entry so the host sends without resolving.
        src.arp_table["10.0.9.9"] = ("00:00:00:00:77:77", small_net.sim.now)
        src.send_udp("10.0.9.9", 1, 2)
        small_net.run(1.0)
        # No session for an unknown destination, and nothing crashed.
        assert len(small_net.controller.sessions) == 0

    def test_arp_for_unknown_ip_floods_to_periphery(self, small_net):
        src = small_net.host("h1_1")
        floods_before = small_net.controller.directory.arp_floods
        src.resolve_and_send(
            pkt.make_udp(src.mac, pkt.BROADCAST_MAC, src.ip, "10.0.9.9",
                         1, 2),
            "10.0.9.9",
        )
        small_net.run(1.0)
        assert small_net.controller.directory.arp_floods == floods_before + 1


class TestBlockedSessions:
    def test_blocked_session_packets_not_released(self):
        policies = PolicyTable()
        policies.add(Policy(
            name="chain", selector=FlowSelector(dst_ip=GATEWAY_IP),
            action=PolicyAction.CHAIN, service_chain=("ids",),
        ))
        net = build_livesec_network(
            topology="linear", policies=policies, elements=[("ids", 1)],
            num_as=3, hosts_per_as=1,
        )
        net.start()
        attack = AttackWebFlow(net.sim, net.host("h1_1"), GATEWAY_IP,
                               rate_bps=2e6, attack_after=2, duration_s=6.0)
        attack.start()
        net.run(3.0)
        session = net.controller.sessions.lookup(
            next(iter(net.controller.sessions)).flow)
        assert session.blocked
        at_block = attack.delivered_bytes(net.gateway)
        net.run(3.0)
        attack.stop()
        assert attack.delivered_bytes(net.gateway) == at_block


class TestServiceMessageEdgeCases:
    def test_malformed_magic_message_blocks_sender(self, small_net):
        from repro.net.host import Host
        from repro.net.node import connect

        liar = Host(small_net.sim, "liar", "00:00:00:00:88:88", "10.8.8.8")
        connect(small_net.sim, small_net.topology.as_switches[0], liar,
                bandwidth_bps=1e9, delay_s=5e-6)
        frame = pkt.make_udp(
            liar.mac, svcmsg.CONTROLLER_MAC, liar.ip, svcmsg.CONTROLLER_IP,
            svcmsg.SERVICE_MESSAGE_PORT, svcmsg.SERVICE_MESSAGE_PORT,
            payload=b"LIVESEC1|x|GARBAGE",
        )
        liar.send(frame, 1)
        small_net.run(1.0)
        switch = small_net.topology.as_switches[0]
        assert any(
            entry.is_drop and entry.match.dl_src == liar.mac
            for entry in switch.table
        )

    def test_event_report_with_forged_cert_blocks_element(self, small_net):
        from repro.net.host import Host
        from repro.net.node import connect

        liar = Host(small_net.sim, "liar", "00:00:00:00:88:89", "10.8.8.9")
        connect(small_net.sim, small_net.topology.as_switches[0], liar,
                bandwidth_bps=1e9, delay_s=5e-6)
        message = svcmsg.EventReportMessage(
            element_mac=liar.mac, certificate="forged", kind="attack",
            flow=None, detail={"attack": "fake"},
        )
        frame = pkt.make_udp(
            liar.mac, svcmsg.CONTROLLER_MAC, liar.ip, svcmsg.CONTROLLER_IP,
            svcmsg.SERVICE_MESSAGE_PORT, svcmsg.SERVICE_MESSAGE_PORT,
            payload=svcmsg.encode_event(message),
        )
        liar.send(frame, 1)
        small_net.run(1.0)
        # The forged attack report must neither block a victim nor be
        # accepted: the liar itself gets blocked.
        assert small_net.controller.counters["flows_blocked"] == 0
        switch = small_net.topology.as_switches[0]
        assert any(
            entry.is_drop and entry.match.dl_src == liar.mac
            for entry in switch.table
        )


class TestPolicyDynamics:
    def test_policy_added_at_runtime_applies_to_new_flows(self, small_net):
        src = small_net.host("h1_1")
        first = CbrUdpFlow(small_net.sim, src, GATEWAY_IP, rate_bps=2e6,
                           duration_s=1.0, sport=25001)
        first.start()
        small_net.run(2.0)
        assert first.delivered_bytes(small_net.gateway) > 0

        small_net.controller.policies.add(Policy(
            name="late-drop", selector=FlowSelector(dst_ip=GATEWAY_IP),
            action=PolicyAction.DROP,
        ))
        small_net.run(6.0)  # old session idles out
        second = CbrUdpFlow(small_net.sim, src, GATEWAY_IP, rate_bps=2e6,
                            duration_s=1.0, sport=25002)
        second.start()
        small_net.run(2.0)
        assert second.delivered_bytes(small_net.gateway) == 0

    def test_icmp_matches_policies_by_ip(self):
        policies = PolicyTable()
        policies.add(Policy(
            name="drop-gw", selector=FlowSelector(dst_ip=GATEWAY_IP),
            action=PolicyAction.DROP,
        ))
        net = build_livesec_network(topology="linear", policies=policies,
                                    num_as=2, hosts_per_as=1)
        net.start()
        host = net.host("h1_1")
        host.ping(GATEWAY_IP)
        net.run(2.0)
        assert host.ping_rtts == []


class TestRoutingDeferred:
    def test_traffic_before_discovery_is_deferred_not_crashed(self):
        net = build_livesec_network(topology="linear", num_as=2,
                                    hosts_per_as=1)
        # No start(): discovery has not run; hosts unknown.
        src = net.host("h1_1")
        src.announce()
        src.arp_table[GATEWAY_IP] = (net.gateway.mac, 0.0)
        src.send_udp(GATEWAY_IP, 1, 2)
        net.run(0.005)  # before the first LLDP round completes
        # Either ignored as transit or learned-but-unroutable; no state.
        assert len(net.controller.sessions) == 0
