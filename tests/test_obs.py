"""Tests for the observability layer: metric primitives, registry,
exporters, and parity between the redesigned introspection API and the
legacy counters interface."""

import pytest

from repro import build_livesec_network
from repro.core.controller import ControllerStatus, LEGACY_COUNTER_NAMES
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricKey,
    MetricsRegistry,
    MetricsSnapshot,
    format_snapshot,
    from_json,
    to_json,
    to_prometheus_text,
)
from repro.workloads import HttpFlow

GATEWAY_IP = "10.255.255.254"


class FakeClock:
    """A manually advanced clock for timer tests."""

    def __init__(self, start: float = 0.0):
        self.t = start

    def __call__(self) -> float:
        return self.t


class TestCounter:
    def test_increments(self):
        counter = Counter(MetricKey("c"))
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_decrease(self):
        counter = Counter(MetricKey("c"))
        with pytest.raises(ValueError):
            counter.inc(-1)


class TestGauge:
    def test_push_mode(self):
        gauge = Gauge(MetricKey("g"))
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12

    def test_pull_mode_reads_at_snapshot_time(self):
        state = {"value": 1}
        gauge = Gauge(MetricKey("g"))
        gauge.set_function(lambda: state["value"])
        assert gauge.snapshot().value == 1
        state["value"] = 7
        assert gauge.snapshot().value == 7

    def test_set_overrides_pull_function(self):
        gauge = Gauge(MetricKey("g"))
        gauge.set_function(lambda: 99)
        gauge.set(1)
        assert gauge.value == 1


class TestHistogram:
    def test_percentiles_over_1_to_100(self):
        hist = Histogram(MetricKey("h"))
        for value in range(1, 101):
            hist.observe(value)
        assert hist.count == 100
        assert hist.mean == pytest.approx(50.5)
        assert hist.percentile(50.0) == 50
        assert hist.percentile(95.0) == 95
        assert hist.percentile(99.0) == 99
        snap = hist.snapshot()
        assert snap.quantile(50.0) == 50
        assert snap.min == 1 and snap.max == 100

    def test_empty_histogram_snapshot(self):
        snap = Histogram(MetricKey("h")).snapshot()
        assert snap.count == 0
        assert snap.min == 0.0 and snap.max == 0.0
        assert snap.quantile(50.0) == 0.0

    def test_timer_observes_clock_span(self):
        clock = FakeClock(start=5.0)
        hist = Histogram(MetricKey("h"), clock=clock)
        with hist.time():
            clock.t = 7.5
        assert hist.count == 1
        assert hist.sum == pytest.approx(2.5)

    def test_registry_clock_inherited_and_overridable(self):
        clock = FakeClock()
        registry = MetricsRegistry(clock=clock)
        inherited = registry.histogram("a")
        overridden = registry.histogram("b", clock=FakeClock(start=100.0))
        with inherited.time():
            clock.t = 1.0
        with overridden.time():
            pass
        assert inherited.sum == pytest.approx(1.0)
        assert overridden.sum == pytest.approx(0.0)

    def test_stride_decimation_keeps_exact_count_and_sum(self):
        hist = Histogram(MetricKey("h"), max_samples=8)
        for value in range(1000):
            hist.observe(value)
        assert hist.count == 1000
        assert hist.sum == sum(range(1000))
        snap = hist.snapshot()
        assert 0 < len(snap.samples) <= 8
        # Decimation keeps the retained points spread over the run, so
        # percentiles stay sane (within a stride of the true value).
        assert snap.quantile(50.0) == pytest.approx(500, abs=150)

    def test_deterministic_reservoir(self):
        def build():
            hist = Histogram(MetricKey("h"), max_samples=16)
            for value in range(500):
                hist.observe(value * 0.1)
            return hist.snapshot()

        assert build() == build()


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.counter("c", kind="a") is not registry.counter("c")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(TypeError):
            registry.gauge("m")

    def test_snapshot_sorted_and_queryable(self):
        registry = MetricsRegistry()
        registry.counter("z.last").inc()
        registry.gauge("a.first").set(1)
        snap = registry.snapshot()
        assert [m.name for m in snap] == ["a.first", "z.last"]
        assert snap.get("z.last").value == 1
        assert snap.get("missing") is None
        assert len(snap.with_prefix("a.")) == 1

    def test_labeled_key_rendering(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits", dpid=3, kind="arp")
        assert str(counter.key) == "hits{dpid=3,kind=arp}"


class TestMerge:
    def test_counters_add(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.counter("c").inc(2)
        b.counter("c").inc(3)
        merged = a.snapshot().merge(b.snapshot())
        assert merged.get("c").value == 5

    def test_gauges_take_latest_shard(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.gauge("g").set(1)
        b.gauge("g").set(9)
        assert a.snapshot().merge(b.snapshot()).get("g").value == 9

    def test_histograms_pool_reservoirs(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        for value in range(1, 51):
            a.histogram("h").observe(value)
        for value in range(51, 101):
            b.histogram("h").observe(value)
        merged = a.snapshot().merge(b.snapshot()).get("h")
        assert merged.count == 100
        assert merged.quantile(50.0) == 50
        assert merged.min == 1 and merged.max == 100

    def test_union_keeps_disjoint_metrics(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.counter("only.a").inc()
        b.counter("only.b").inc()
        merged = a.snapshot().merge(b.snapshot())
        assert merged.get("only.a") and merged.get("only.b")

    def test_kind_mismatch_refused(self):
        counter = MetricsRegistry().counter("m").snapshot()
        gauge = MetricsRegistry().gauge("m").snapshot()
        with pytest.raises(ValueError):
            counter.merge(gauge)


def populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("requests", "Total requests", route="/a").inc(3)
    registry.gauge("temp", "Temperature").set(21.5)
    hist = registry.histogram("lat", "Latency")
    for value in (1.0, 2.0, 3.0, 4.0):
        hist.observe(value)
    return registry


class TestExporters:
    def test_json_round_trip_is_exact(self):
        snap = populated_registry().snapshot()
        assert from_json(to_json(snap)) == snap
        assert from_json(to_json(snap, indent=2)) == snap

    def test_prometheus_golden(self):
        text = to_prometheus_text(populated_registry().snapshot(),
                                  namespace="test")
        assert text == (
            "# HELP test_lat Latency\n"
            "# TYPE test_lat summary\n"
            'test_lat{quantile="0.5"} 2\n'
            'test_lat{quantile="0.95"} 4\n'
            'test_lat{quantile="0.99"} 4\n'
            "test_lat_sum 10\n"
            "test_lat_count 4\n"
            "# HELP test_requests_total Total requests\n"
            "# TYPE test_requests_total counter\n"
            'test_requests_total{route="/a"} 3\n'
            "# HELP test_temp Temperature\n"
            "# TYPE test_temp gauge\n"
            "test_temp 21.5\n"
        )

    def test_format_snapshot_sections(self):
        text = format_snapshot(populated_registry().snapshot(), title="t")
        assert "counters:" in text and "gauges:" in text
        assert "p95" in text
        assert "requests{route=/a}" in text


class TestControllerParity:
    """The redesigned introspection API must agree with the legacy
    counters interface on a live scenario."""

    @pytest.fixture
    def busy_net(self, ids_policy_table):
        net = build_livesec_network(
            topology="linear", policies=ids_policy_table,
            elements=[("ids", 1)], num_as=2, hosts_per_as=2,
        )
        net.start()
        flows = [
            HttpFlow(net.sim, host, GATEWAY_IP, rate_bps=2e6,
                     duration_s=1.5).start()
            for host in net.topology.hosts
            if host is not net.topology.gateway
        ]
        net.run(3.0)
        for flow in flows:
            flow.stop()
        return net

    def test_legacy_counters_match_registry(self, busy_net):
        controller = busy_net.controller
        snap = controller.metrics.snapshot()
        assert set(controller.counters) == set(LEGACY_COUNTER_NAMES)
        for name, value in controller.counters.items():
            metric = snap.get(f"controller.{name}")
            assert metric is not None and metric.kind == "counter"
            assert metric.value == value
        assert controller.counters["flows_installed"] >= 1

    def test_status_is_typed_and_shape_compatible(self, busy_net):
        status = busy_net.controller.status()
        assert isinstance(status, ControllerStatus)
        legacy = status.to_dict()
        assert set(legacy) == {"nib", "registry", "sessions", "counters",
                               "events"}
        assert set(status) == set(legacy)  # Mapping view == old dict keys
        assert status["counters"] == legacy["counters"]
        assert legacy["counters"] == dict(busy_net.controller.counters)
        assert isinstance(status.metrics, MetricsSnapshot)

    def test_hot_path_histograms_populated(self, busy_net):
        snap = busy_net.metrics_snapshot()
        data_latency = snap.get("controller.packet_in_latency_s", kind="data")
        assert data_latency is not None and data_latency.count >= 1
        assert data_latency.quantile(95.0) > 0
        rules = snap.get("controller.flow_setup_rules")
        assert rules.count >= 1 and rules.min >= 1
        scans = snap.get("controller.policy_lookup_scans")
        assert scans.count >= rules.count
        assert snap.get("balancer.assign_s").count >= 1

    def test_per_switch_gauges_exported(self, busy_net):
        snap = busy_net.metrics_snapshot()
        for switch in busy_net.topology.all_openflow_switches():
            occupancy = snap.get("switch.flow_table_entries",
                                 dpid=switch.dpid)
            assert occupancy is not None
            assert occupancy.value == len(switch.table)

    def test_snapshot_survives_json_round_trip(self, busy_net):
        snap = busy_net.metrics_snapshot()
        assert from_json(to_json(snap)) == snap

    def test_prometheus_export_covers_controller(self, busy_net):
        text = to_prometheus_text(busy_net.metrics_snapshot())
        assert "livesec_controller_flows_installed_total" in text
        assert 'livesec_controller_packet_in_latency_s{kind="data"' in text
