"""Unit tests for the event log, monitoring component and replay."""

import pytest

from repro.core.events import EventKind, EventLog, NetworkEvent
from repro.core.visualization import (
    MonitoringComponent,
    Snapshot,
    render_snapshot,
)


class TestEventLog:
    def test_emit_and_query_by_kind(self):
        log = EventLog()
        log.emit(1.0, EventKind.HOST_JOIN, mac="m1")
        log.emit(2.0, EventKind.HOST_LEAVE, mac="m1")
        log.emit(3.0, EventKind.HOST_JOIN, mac="m2")
        joins = log.query(kind=EventKind.HOST_JOIN)
        assert len(joins) == 2
        assert joins[0].data["mac"] == "m1"

    def test_query_by_time_window(self):
        log = EventLog()
        for t in (1.0, 2.0, 3.0, 4.0):
            log.emit(t, "tick")
        assert len(log.query(since=2.0, until=3.0)) == 2

    def test_query_with_predicate(self):
        log = EventLog()
        log.emit(1.0, "x", value=1)
        log.emit(2.0, "x", value=2)
        hits = log.query(where=lambda e: e.data["value"] > 1)
        assert len(hits) == 1

    def test_subscribers_see_events(self):
        log = EventLog()
        seen = []
        log.subscribe(seen.append)
        event = log.emit(1.0, "x")
        assert seen == [event]

    def test_counts_and_tail(self):
        log = EventLog()
        for __ in range(3):
            log.emit(1.0, "a")
        log.emit(2.0, "b")
        assert log.counts_by_kind() == {"a": 3, "b": 1}
        assert [e.kind for e in log.tail(2)] == ["a", "b"]

    def test_events_are_immutable(self):
        event = NetworkEvent(time=1.0, kind="x", data={})
        with pytest.raises(AttributeError):
            event.kind = "y"


@pytest.fixture
def monitor():
    log = EventLog()
    return log, MonitoringComponent(log)


class TestStateMachine:
    def test_switch_and_link_lifecycle(self, monitor):
        log, mon = monitor
        log.emit(1.0, EventKind.SWITCH_JOIN, dpid=1, name="a")
        log.emit(1.0, EventKind.SWITCH_JOIN, dpid=2, name="b")
        log.emit(2.0, EventKind.LINK_UP, src_dpid=1, dst_dpid=2)
        log.emit(2.0, EventKind.LINK_UP, src_dpid=2, dst_dpid=1)
        snap = mon.snapshot()
        assert sorted(snap.switches) == [1, 2]
        assert snap.full_mesh()
        log.emit(3.0, EventKind.SWITCH_LEAVE, dpid=2)
        snap = mon.snapshot()
        assert snap.switches == [1]
        assert snap.links == []

    def test_user_join_apps_and_block(self, monitor):
        log, mon = monitor
        log.emit(1.0, EventKind.HOST_JOIN, mac="m1", ip="10.0.0.1", dpid=1)
        log.emit(2.0, EventKind.PROTOCOL_IDENTIFIED, user_mac="m1",
                 application="http")
        log.emit(2.5, EventKind.PROTOCOL_IDENTIFIED, user_mac="m1",
                 application="http")  # duplicate app collapsed
        log.emit(3.0, EventKind.ATTACK_DETECTED, user_mac="m1", attack="sqli")
        log.emit(3.0, EventKind.FLOW_BLOCKED, user_mac="m1")
        user = mon.snapshot().users["m1"]
        assert user.applications == ["http"]
        assert user.attacks == 1 and user.blocked

    def test_host_leave_keeps_record_offline(self, monitor):
        log, mon = monitor
        log.emit(1.0, EventKind.HOST_JOIN, mac="m1", ip=None, dpid=1)
        log.emit(2.0, EventKind.HOST_LEAVE, mac="m1")
        snap = mon.snapshot()
        assert not snap.users["m1"].online
        assert snap.online_users() == []

    def test_element_lifecycle_and_load(self, monitor):
        log, mon = monitor
        log.emit(1.0, EventKind.ELEMENT_ONLINE, mac="e1",
                 service_type="ids", dpid=2)
        log.emit(2.0, EventKind.ELEMENT_LOAD, mac="e1", cpu=0.7, pps=500)
        element = mon.snapshot().elements["e1"]
        assert element.service_type == "ids"
        assert element.cpu == 0.7 and element.pps == 500
        log.emit(3.0, EventKind.ELEMENT_OFFLINE, mac="e1")
        assert not mon.snapshot().elements["e1"].online

    def test_link_load_latest_value_wins(self, monitor):
        log, mon = monitor
        log.emit(1.0, EventKind.LINK_LOAD, dpid=1, port=2, utilization=0.1)
        log.emit(2.0, EventKind.LINK_LOAD, dpid=1, port=2, utilization=0.8)
        assert mon.snapshot().link_loads[(1, 2)] == 0.8

    def test_host_move_updates_dpid(self, monitor):
        log, mon = monitor
        log.emit(1.0, EventKind.HOST_JOIN, mac="m1", ip=None, dpid=1)
        log.emit(2.0, EventKind.HOST_MOVE, mac="m1", dpid=3)
        assert mon.snapshot().users["m1"].dpid == 3


class TestReplay:
    def test_replay_reconstructs_past(self, monitor):
        log, mon = monitor
        log.emit(1.0, EventKind.HOST_JOIN, mac="m1", ip=None, dpid=1)
        log.emit(5.0, EventKind.HOST_LEAVE, mac="m1")
        past = mon.replay(until=3.0)
        assert past.users["m1"].online
        now = mon.replay()
        assert not now.users["m1"].online

    def test_replay_series_is_incremental(self, monitor):
        log, mon = monitor
        log.emit(1.0, EventKind.HOST_JOIN, mac="m1", ip=None, dpid=1)
        log.emit(3.0, EventKind.HOST_JOIN, mac="m2", ip=None, dpid=1)
        series = list(mon.replay_series([0.5, 2.0, 4.0]))
        assert len(series[0].users) == 0
        assert len(series[1].users) == 1
        assert len(series[2].users) == 2

    def test_snapshot_is_isolated_copy(self, monitor):
        log, mon = monitor
        log.emit(1.0, EventKind.HOST_JOIN, mac="m1", ip=None, dpid=1)
        snap = mon.snapshot()
        snap.users["m1"].online = False
        assert mon.snapshot().users["m1"].online


class TestRender:
    def test_render_contains_key_facts(self, monitor):
        log, mon = monitor
        log.emit(1.0, EventKind.SWITCH_JOIN, dpid=1, name="a")
        log.emit(1.0, EventKind.HOST_JOIN, mac="m1", ip="10.0.0.1", dpid=1)
        log.emit(2.0, EventKind.ELEMENT_ONLINE, mac="e1",
                 service_type="ids", dpid=1)
        log.emit(3.0, EventKind.ATTACK_DETECTED, user_mac="m1", attack="x")
        text = render_snapshot(mon.snapshot())
        assert "users online: 1" in text
        assert "m1" in text and "e1" in text
        assert "attacks" in text

    def test_render_empty_snapshot(self):
        text = render_snapshot(Snapshot(time=0.0))
        assert "users online: 0" in text
