"""Unit tests for the event log, monitoring component and replay."""

import pytest

from repro.core.events import EventKind, EventLog, NetworkEvent
from repro.core.visualization import (
    MonitoringComponent,
    Snapshot,
    render_snapshot,
)
from repro.obs import MetricsRegistry


class TestEventLog:
    def test_emit_and_query_by_kind(self):
        log = EventLog()
        log.emit(1.0, EventKind.HOST_JOIN, mac="m1")
        log.emit(2.0, EventKind.HOST_LEAVE, mac="m1")
        log.emit(3.0, EventKind.HOST_JOIN, mac="m2")
        joins = log.query(kind=EventKind.HOST_JOIN)
        assert len(joins) == 2
        assert joins[0].data["mac"] == "m1"

    def test_query_by_time_window(self):
        log = EventLog()
        for t in (1.0, 2.0, 3.0, 4.0):
            log.emit(t, "tick")
        assert len(log.query(since=2.0, until=3.0)) == 2

    def test_query_with_predicate(self):
        log = EventLog()
        log.emit(1.0, "x", value=1)
        log.emit(2.0, "x", value=2)
        hits = log.query(where=lambda e: e.data["value"] > 1)
        assert len(hits) == 1

    def test_subscribers_see_events(self):
        log = EventLog()
        seen = []
        log.subscribe(seen.append)
        event = log.emit(1.0, "x")
        assert seen == [event]

    def test_counts_and_tail(self):
        log = EventLog()
        for __ in range(3):
            log.emit(1.0, "a")
        log.emit(2.0, "b")
        assert log.counts_by_kind() == {"a": 3, "b": 1}
        assert [e.kind for e in log.tail(2)] == ["a", "b"]

    def test_events_are_immutable(self):
        event = NetworkEvent(time=1.0, kind="x", data={})
        with pytest.raises(AttributeError):
            event.kind = "y"

    def test_query_empty_log(self):
        log = EventLog()
        assert log.query() == []
        assert log.query(kind="x", since=0.0, until=9.0) == []
        assert log.counts_by_kind() == {}
        assert log.tail(3) == []

    def test_query_since_equals_until_is_inclusive(self):
        log = EventLog()
        log.emit(1.0, "a")
        log.emit(2.0, "b")
        log.emit(2.0, "c")
        log.emit(3.0, "d")
        hits = log.query(since=2.0, until=2.0)
        assert [e.kind for e in hits] == ["b", "c"]

    def test_query_predicate_exception_propagates(self):
        log = EventLog()
        log.emit(1.0, "a", value=1)

        def boom(event):
            raise RuntimeError("predicate failed")

        with pytest.raises(RuntimeError, match="predicate failed"):
            log.query(where=boom)
        # The log itself is unharmed.
        assert len(log) == 1


class TestSegmentation:
    def test_events_span_segments_in_order(self):
        log = EventLog(segment_size=3)
        for i in range(10):
            log.emit(float(i), "tick", i=i)
        assert len(log) == 10
        assert [e.data["i"] for e in log.all()] == list(range(10))
        assert len(log.segment_stats()) == 4

    def test_query_matches_linear_oracle_across_segments(self):
        log = EventLog(segment_size=4)
        for i in range(25):
            log.emit(float(i), "a" if i % 3 else "b", i=i)
        for kwargs in (
            {}, {"kind": "a"}, {"kind": "b"},
            {"since": 5.0, "until": 11.0},
            {"kind": "a", "since": 7.0},
            {"kind": "missing"},
            {"where": lambda e: e.data["i"] % 2 == 0},
        ):
            assert log.query(**kwargs) == log._query_linear(**kwargs)

    def test_counts_by_kind_consistent_across_rotation(self):
        log = EventLog(segment_size=2)
        for i in range(11):
            log.emit(float(i), "a" if i % 2 else "b")
        assert log.counts_by_kind() == {"a": 5, "b": 6}

    def test_tail_crosses_segment_boundaries(self):
        log = EventLog(segment_size=3)
        for i in range(8):
            log.emit(float(i), "tick", i=i)
        assert [e.data["i"] for e in log.tail(5)] == [3, 4, 5, 6, 7]
        assert [e.data["i"] for e in log.tail(100)] == list(range(8))

    def test_events_after_skips_whole_segments(self):
        log = EventLog(segment_size=3)
        events = [log.emit(float(i), "tick", i=i) for i in range(9)]
        delta = list(log.events_after(events[4].seq))
        assert [e.data["i"] for e in delta] == [5, 6, 7, 8]
        assert list(log.events_after(events[-1].seq)) == []


class TestCompaction:
    def _churn(self, log, upto):
        for i in range(upto):
            log.emit(float(i), EventKind.LINK_LOAD,
                     dpid=1, port=i % 2, utilization=i / 100.0)

    def test_old_segments_collapse_to_last_value_per_key(self):
        log = EventLog(segment_size=4, retention=0)
        self._churn(log, 9)  # two sealed segments + one active
        # Sealed segments hold one event per (dpid, port) key at most.
        stats = log.segment_stats()
        assert stats[0]["compacted"] and stats[1]["compacted"]
        assert stats[0]["events"] == 2 and stats[1]["events"] == 2
        assert log.compacted_events == 4
        # The last value per key is the survivor.
        loads = {}
        for event in log.query(kind=EventKind.LINK_LOAD):
            loads[(event.data["dpid"], event.data["port"])] = \
                event.data["utilization"]
        assert loads == {(1, 0): 0.08, (1, 1): 0.07}

    def test_lifecycle_events_survive_compaction_losslessly(self):
        log = EventLog(segment_size=4, retention=0)
        log.emit(0.0, EventKind.HOST_JOIN, mac="m1", ip=None, dpid=1)
        self._churn(log, 20)
        log.emit(30.0, EventKind.HOST_LEAVE, mac="m1")
        joins = log.query(kind=EventKind.HOST_JOIN)
        leaves = log.query(kind=EventKind.HOST_LEAVE)
        assert len(joins) == 1 and joins[0].data["mac"] == "m1"
        assert len(leaves) == 1

    def test_counts_by_kind_tracks_compaction(self):
        log = EventLog(segment_size=4, retention=0)
        self._churn(log, 17)
        counts = log.counts_by_kind()
        assert counts[EventKind.LINK_LOAD] == len(
            log.query(kind=EventKind.LINK_LOAD)
        )
        assert counts[EventKind.LINK_LOAD] == len(log)

    def test_retention_none_never_compacts(self):
        log = EventLog(segment_size=2)
        self._churn(log, 20)
        assert len(log) == 20
        assert log.compacted_events == 0

    def test_compaction_metrics_counter(self):
        registry = MetricsRegistry()
        log = EventLog(segment_size=4, retention=0, metrics=registry)
        self._churn(log, 9)
        snap = registry.snapshot()
        assert snap.get("eventlog.compacted_total").value == 4
        assert snap.get("eventlog.events").value == float(len(log))
        assert snap.get("eventlog.segments").value == 3.0

    def test_subscribers_see_every_event_despite_compaction(self):
        log = EventLog(segment_size=4, retention=0)
        seen = []
        log.subscribe(seen.append)
        self._churn(log, 12)
        assert len(seen) == 12


class TestPersistence:
    def test_save_load_roundtrip_preserves_digest(self, tmp_path):
        log = EventLog(segment_size=3)
        log.emit(1.0, EventKind.HOST_JOIN, mac="m1", ip="10.0.0.1", dpid=1)
        log.emit(2.0, EventKind.LINK_LOAD, dpid=1, port=2, utilization=0.25)
        log.emit(3.0, EventKind.FLOW_STEERED, chain=("ids", "l7"))
        path = str(tmp_path / "run.jsonl")
        assert log.save(path) == 3
        loaded = EventLog.load(path)
        assert len(loaded) == 3
        assert loaded.digest() == log.digest()
        assert [e.kind for e in loaded.all()] == [e.kind for e in log.all()]

    def test_stream_mode_matches_save(self, tmp_path):
        streamed = str(tmp_path / "streamed.jsonl")
        saved = str(tmp_path / "saved.jsonl")
        log = EventLog()
        close = log.stream_to(streamed)
        log.emit(1.0, "a", x=1)
        log.emit(2.0, "b", y="z")
        close()
        log.save(saved)
        assert open(streamed).read() == open(saved).read()

    def test_second_stream_sink_rejected(self, tmp_path):
        log = EventLog()
        close = log.stream_to(str(tmp_path / "a.jsonl"))
        with pytest.raises(RuntimeError):
            log.stream_to(str(tmp_path / "b.jsonl"))
        close()

    def test_loaded_log_replays_through_monitoring(self, tmp_path):
        log = EventLog()
        log.emit(1.0, EventKind.HOST_JOIN, mac="m1", ip=None, dpid=1)
        log.emit(5.0, EventKind.HOST_LEAVE, mac="m1")
        path = str(tmp_path / "run.jsonl")
        log.save(path)
        mon = MonitoringComponent(EventLog.load(path))
        assert not mon.snapshot().users["m1"].online
        assert mon.replay(until=3.0).users["m1"].online


@pytest.fixture
def monitor():
    log = EventLog()
    return log, MonitoringComponent(log)


class TestStateMachine:
    def test_switch_and_link_lifecycle(self, monitor):
        log, mon = monitor
        log.emit(1.0, EventKind.SWITCH_JOIN, dpid=1, name="a")
        log.emit(1.0, EventKind.SWITCH_JOIN, dpid=2, name="b")
        log.emit(2.0, EventKind.LINK_UP, src_dpid=1, dst_dpid=2)
        log.emit(2.0, EventKind.LINK_UP, src_dpid=2, dst_dpid=1)
        snap = mon.snapshot()
        assert sorted(snap.switches) == [1, 2]
        assert snap.full_mesh()
        log.emit(3.0, EventKind.SWITCH_LEAVE, dpid=2)
        snap = mon.snapshot()
        assert snap.switches == [1]
        assert snap.links == []

    def test_user_join_apps_and_block(self, monitor):
        log, mon = monitor
        log.emit(1.0, EventKind.HOST_JOIN, mac="m1", ip="10.0.0.1", dpid=1)
        log.emit(2.0, EventKind.PROTOCOL_IDENTIFIED, user_mac="m1",
                 application="http")
        log.emit(2.5, EventKind.PROTOCOL_IDENTIFIED, user_mac="m1",
                 application="http")  # duplicate app collapsed
        log.emit(3.0, EventKind.ATTACK_DETECTED, user_mac="m1", attack="sqli")
        log.emit(3.0, EventKind.FLOW_BLOCKED, user_mac="m1")
        user = mon.snapshot().users["m1"]
        assert user.applications == ["http"]
        assert user.attacks == 1 and user.blocked

    def test_host_leave_keeps_record_offline(self, monitor):
        log, mon = monitor
        log.emit(1.0, EventKind.HOST_JOIN, mac="m1", ip=None, dpid=1)
        log.emit(2.0, EventKind.HOST_LEAVE, mac="m1")
        snap = mon.snapshot()
        assert not snap.users["m1"].online
        assert snap.online_users() == []

    def test_element_lifecycle_and_load(self, monitor):
        log, mon = monitor
        log.emit(1.0, EventKind.ELEMENT_ONLINE, mac="e1",
                 service_type="ids", dpid=2)
        log.emit(2.0, EventKind.ELEMENT_LOAD, mac="e1", cpu=0.7, pps=500)
        element = mon.snapshot().elements["e1"]
        assert element.service_type == "ids"
        assert element.cpu == 0.7 and element.pps == 500
        log.emit(3.0, EventKind.ELEMENT_OFFLINE, mac="e1")
        assert not mon.snapshot().elements["e1"].online

    def test_link_load_latest_value_wins(self, monitor):
        log, mon = monitor
        log.emit(1.0, EventKind.LINK_LOAD, dpid=1, port=2, utilization=0.1)
        log.emit(2.0, EventKind.LINK_LOAD, dpid=1, port=2, utilization=0.8)
        assert mon.snapshot().link_loads[(1, 2)] == 0.8

    def test_host_move_updates_dpid(self, monitor):
        log, mon = monitor
        log.emit(1.0, EventKind.HOST_JOIN, mac="m1", ip=None, dpid=1)
        log.emit(2.0, EventKind.HOST_MOVE, mac="m1", dpid=3)
        assert mon.snapshot().users["m1"].dpid == 3


class TestReplay:
    def test_replay_reconstructs_past(self, monitor):
        log, mon = monitor
        log.emit(1.0, EventKind.HOST_JOIN, mac="m1", ip=None, dpid=1)
        log.emit(5.0, EventKind.HOST_LEAVE, mac="m1")
        past = mon.replay(until=3.0)
        assert past.users["m1"].online
        now = mon.replay()
        assert not now.users["m1"].online

    def test_replay_series_is_incremental(self, monitor):
        log, mon = monitor
        log.emit(1.0, EventKind.HOST_JOIN, mac="m1", ip=None, dpid=1)
        log.emit(3.0, EventKind.HOST_JOIN, mac="m2", ip=None, dpid=1)
        series = list(mon.replay_series([0.5, 2.0, 4.0]))
        assert len(series[0].users) == 0
        assert len(series[1].users) == 1
        assert len(series[2].users) == 2

    def test_snapshot_is_isolated_copy(self, monitor):
        log, mon = monitor
        log.emit(1.0, EventKind.HOST_JOIN, mac="m1", ip=None, dpid=1)
        snap = mon.snapshot()
        snap.users["m1"].online = False
        assert mon.snapshot().users["m1"].online


class TestCheckpoints:
    def _emit_hosts(self, log, count):
        for i in range(count):
            log.emit(float(i), EventKind.HOST_JOIN,
                     mac=f"m{i}", ip=None, dpid=1)

    def test_checkpoints_appear_every_interval(self):
        log = EventLog()
        mon = MonitoringComponent(log, checkpoint_interval=5)
        self._emit_hosts(log, 12)
        assert [seq for seq, __ in mon.checkpoints()] == [4, 9]

    def test_checkpointed_replay_matches_linear(self):
        log = EventLog(segment_size=4)
        mon = MonitoringComponent(log, checkpoint_interval=3)
        self._emit_hosts(log, 20)
        log.emit(25.0, EventKind.HOST_LEAVE, mac="m3")
        for until in (None, 0.0, 7.5, 19.0, 25.0, 99.0, -1.0):
            assert mon.replay(until) == mon._replay_linear(until)

    def test_replay_folds_only_the_delta(self):
        log = EventLog(segment_size=8)
        mon = MonitoringComponent(log, checkpoint_interval=10)
        self._emit_hosts(log, 100)
        applied = []
        original = mon.log.events_after

        def counting(seq):
            for event in original(seq):
                applied.append(event)
                yield event

        mon.log.events_after = counting
        mon.replay(until=98.5)
        # 99 events precede t=98.5; the nearest checkpoint (seq 89)
        # leaves at most interval-sized work.
        assert len(applied) <= 11

    def test_checkpoint_ladder_stays_bounded(self):
        log = EventLog()
        mon = MonitoringComponent(log, checkpoint_interval=2,
                                  max_checkpoints=4)
        self._emit_hosts(log, 200)
        assert len(mon._checkpoints) <= 4
        assert mon.checkpoint_interval > 2
        # Thinned or not, replay stays exact.
        for until in (3.0, 50.5, 199.0):
            assert mon.replay(until) == mon._replay_linear(until)

    def test_monitoring_has_no_database_copy(self):
        log = EventLog()
        mon = MonitoringComponent(log)
        assert not hasattr(mon, "database")


class TestMonitoringViewFixes:
    def test_switch_leave_prunes_link_loads(self, monitor):
        log, mon = monitor
        log.emit(1.0, EventKind.LINK_LOAD, dpid=1, port=1, utilization=0.9)
        log.emit(1.0, EventKind.LINK_LOAD, dpid=2, port=1, utilization=0.5)
        log.emit(2.0, EventKind.SWITCH_LEAVE, dpid=1)
        loads = mon.snapshot().link_loads
        assert (1, 1) not in loads
        assert loads[(2, 1)] == 0.5

    def test_link_down_prunes_both_ports_loads(self, monitor):
        log, mon = monitor
        log.emit(1.0, EventKind.LINK_UP, src_dpid=1, src_port=3,
                 dst_dpid=2, dst_port=4)
        log.emit(2.0, EventKind.LINK_LOAD, dpid=1, port=3, utilization=0.7)
        log.emit(2.0, EventKind.LINK_LOAD, dpid=2, port=4, utilization=0.6)
        log.emit(2.0, EventKind.LINK_LOAD, dpid=2, port=9, utilization=0.1)
        log.emit(3.0, EventKind.LINK_DOWN, src_dpid=1, src_port=3,
                 dst_dpid=2, dst_port=4)
        snap = mon.snapshot()
        assert snap.links == []
        assert snap.link_loads == {(2, 9): 0.1}

    def test_link_down_without_ports_still_removes_link(self, monitor):
        log, mon = monitor  # old recordings carry no port fields
        log.emit(1.0, EventKind.LINK_UP, src_dpid=1, dst_dpid=2)
        log.emit(2.0, EventKind.LINK_DOWN, src_dpid=2, dst_dpid=1)
        assert mon.snapshot().links == []

    def test_rejoining_user_keeps_history(self, monitor):
        log, mon = monitor
        log.emit(1.0, EventKind.HOST_JOIN, mac="m1", ip="10.0.0.1", dpid=1)
        log.emit(2.0, EventKind.PROTOCOL_IDENTIFIED, user_mac="m1",
                 application="http")
        log.emit(3.0, EventKind.ATTACK_DETECTED, user_mac="m1", attack="x")
        log.emit(3.0, EventKind.FLOW_BLOCKED, user_mac="m1")
        log.emit(4.0, EventKind.HOST_LEAVE, mac="m1")
        log.emit(9.0, EventKind.HOST_JOIN, mac="m1", ip="10.0.0.7", dpid=3)
        user = mon.snapshot().users["m1"]
        assert user.online
        assert user.ip == "10.0.0.7" and user.dpid == 3
        assert user.applications == ["http"]
        assert user.attacks == 1 and user.blocked

    def test_host_move_while_offline_marks_online(self, monitor):
        log, mon = monitor
        log.emit(1.0, EventKind.HOST_JOIN, mac="m1", ip=None, dpid=1)
        log.emit(2.0, EventKind.HOST_LEAVE, mac="m1")
        log.emit(3.0, EventKind.HOST_MOVE, mac="m1", dpid=2)
        user = mon.snapshot().users["m1"]
        assert user.online and user.dpid == 2

    def test_full_mesh_accepts_one_directional_discovery(self):
        snap = Snapshot(time=0.0, switches=[1, 2, 3],
                        links=[(1, 2), (3, 1), (2, 3)])
        assert snap.full_mesh()

    def test_full_mesh_still_fails_on_missing_pair(self):
        snap = Snapshot(time=0.0, switches=[1, 2, 3],
                        links=[(1, 2), (2, 1), (1, 3)])
        assert not snap.full_mesh()

    def test_replay_series_non_ascending_times(self, monitor):
        log, mon = monitor
        log.emit(1.0, EventKind.HOST_JOIN, mac="m1", ip=None, dpid=1)
        log.emit(3.0, EventKind.HOST_JOIN, mac="m2", ip=None, dpid=1)
        log.emit(5.0, EventKind.HOST_LEAVE, mac="m1")
        times = [4.0, 2.0, 6.0, 0.5]
        series = list(mon.replay_series(times))
        for snap, moment in zip(series, times):
            assert snap == mon.replay(until=moment)
        # The rewound moments really differ from the forward cursor.
        assert len(series[1].users) == 1
        assert len(series[3].users) == 0


class TestRender:
    def test_render_contains_key_facts(self, monitor):
        log, mon = monitor
        log.emit(1.0, EventKind.SWITCH_JOIN, dpid=1, name="a")
        log.emit(1.0, EventKind.HOST_JOIN, mac="m1", ip="10.0.0.1", dpid=1)
        log.emit(2.0, EventKind.ELEMENT_ONLINE, mac="e1",
                 service_type="ids", dpid=1)
        log.emit(3.0, EventKind.ATTACK_DETECTED, user_mac="m1", attack="x")
        text = render_snapshot(mon.snapshot())
        assert "users online: 1" in text
        assert "m1" in text and "e1" in text
        assert "attacks" in text

    def test_render_empty_snapshot(self):
        text = render_snapshot(Snapshot(time=0.0))
        assert "users online: 0" in text
