# Convenience targets for the LiveSec reproduction.

.PHONY: install test bench bench-smoke lint stats-smoke chaos-smoke \
	chaos-determinism examples all

install:
	python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only -s

# Seconds-scale microbench of the datapath hot path; exits non-zero
# unless the indexed lookup beats the linear reference scan.  Writes
# BENCH_flowtable.json.
bench-smoke:
	PYTHONPATH=src python benchmarks/bench_flowtable.py

# ruff when available; otherwise a full-tree syntax check plus the
# stdlib-only unused-import checker (the part of ruff we rely on).
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; falling back to compileall"; \
		python -m compileall -q src tests benchmarks; \
	fi
	python scripts/check_unused_imports.py src tests benchmarks

stats-smoke:
	PYTHONPATH=src python -m repro stats --quick

# Seeded chaos run: one element crash with healthy peers; exits
# non-zero unless every affected session failed over.
chaos-smoke:
	PYTHONPATH=src python -m repro chaos --seed 0 --assert-recovered

# The same seeded chaos run twice; the event-log digests must match
# exactly or the simulation is no longer deterministic.
chaos-determinism:
	@PYTHONPATH=src python -m repro chaos --seed 0 | tee /tmp/chaos-a.txt
	@PYTHONPATH=src python -m repro chaos --seed 0 | tee /tmp/chaos-b.txt
	@a=$$(grep -o 'digest [0-9a-f]*' /tmp/chaos-a.txt); \
	b=$$(grep -o 'digest [0-9a-f]*' /tmp/chaos-b.txt); \
	if [ -z "$$a" ] || [ "$$a" != "$$b" ]; then \
		echo "chaos digest mismatch: '$$a' vs '$$b'"; exit 1; \
	else \
		echo "chaos determinism OK ($$a)"; \
	fi

examples:
	python examples/quickstart.py
	python examples/campus_visualization.py
	python examples/attack_mitigation.py
	python examples/load_balancing.py
	python examples/aggregate_flow_control.py
	python examples/datacenter_fabric.py

all: install test bench
