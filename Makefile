# Convenience targets for the LiveSec reproduction.

.PHONY: install test bench lint stats-smoke chaos-smoke examples all

install:
	python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only -s

# ruff when available; otherwise at least a full-tree syntax check.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; falling back to compileall"; \
		python -m compileall -q src tests benchmarks; \
	fi

stats-smoke:
	PYTHONPATH=src python -m repro stats --quick

# Seeded chaos run: one element crash with healthy peers; exits
# non-zero unless every affected session failed over.
chaos-smoke:
	PYTHONPATH=src python -m repro chaos --seed 0 --assert-recovered

examples:
	python examples/quickstart.py
	python examples/campus_visualization.py
	python examples/attack_mitigation.py
	python examples/load_balancing.py
	python examples/aggregate_flow_control.py
	python examples/datacenter_fabric.py

all: install test bench
