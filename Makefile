# Convenience targets for the LiveSec reproduction.

.PHONY: install test bench bench-smoke lint stats-smoke chaos-smoke \
	chaos-determinism accountability-smoke replay-smoke policy-smoke \
	shard-smoke fluid-smoke ops-smoke examples all

install:
	python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only -s

# Seconds-scale microbenches of the scan-vs-index hot paths, the
# shard fabric's scaling curve, and the fluid fast-forward kernel;
# each exits non-zero unless the new path beats its reference
# (indexed vs linear oracle; >=3x aggregate sessions/sec at 8 shards
# vs 1; >=10x wall-clock at 1000 suspended flows).  Writes
# BENCH_flowtable.json + BENCH_eventlog.json +
# BENCH_shard_scaling.json + BENCH_fluid.json.
bench-smoke:
	PYTHONPATH=src python benchmarks/bench_flowtable.py
	PYTHONPATH=src python benchmarks/bench_eventlog.py
	PYTHONPATH=src python benchmarks/bench_shard_scaling.py
	PYTHONPATH=src python benchmarks/bench_fluid.py

# ruff when available; otherwise a full-tree syntax check plus the
# stdlib-only unused-import checker (the part of ruff we rely on).
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; falling back to compileall"; \
		python -m compileall -q src tests benchmarks; \
	fi
	python scripts/check_unused_imports.py src tests benchmarks

stats-smoke:
	PYTHONPATH=src python -m repro stats --quick

# Seeded chaos run: one element crash with healthy peers; exits
# non-zero unless every affected session failed over.
chaos-smoke:
	PYTHONPATH=src python -m repro chaos --seed 0 --assert-recovered

# The same seeded chaos run twice; the event-log digests must match
# exactly or the simulation is no longer deterministic.  The sharded
# variant repeats the check on a 4-shard control plane, where the
# digest folds every shard's log plus the coordinator's.
chaos-determinism:
	@PYTHONPATH=src python -m repro chaos --seed 0 | tee /tmp/chaos-a.txt
	@PYTHONPATH=src python -m repro chaos --seed 0 | tee /tmp/chaos-b.txt
	@a=$$(grep -o 'digest [0-9a-f]*' /tmp/chaos-a.txt); \
	b=$$(grep -o 'digest [0-9a-f]*' /tmp/chaos-b.txt); \
	if [ -z "$$a" ] || [ "$$a" != "$$b" ]; then \
		echo "chaos digest mismatch: '$$a' vs '$$b'"; exit 1; \
	else \
		echo "chaos determinism OK ($$a)"; \
	fi
	@PYTHONPATH=src python -m repro chaos --seed 0 --shards 4 \
		| tee /tmp/chaos-shards-a.txt
	@PYTHONPATH=src python -m repro chaos --seed 0 --shards 4 \
		| tee /tmp/chaos-shards-b.txt
	@a=$$(grep -o 'digest [0-9a-f]*' /tmp/chaos-shards-a.txt); \
	b=$$(grep -o 'digest [0-9a-f]*' /tmp/chaos-shards-b.txt); \
	if [ -z "$$a" ] || [ "$$a" != "$$b" ]; then \
		echo "sharded chaos digest mismatch: '$$a' vs '$$b'"; exit 1; \
	else \
		echo "sharded chaos determinism OK ($$a)"; \
	fi

# Seeded compromised-switch scenario under forwarding accountability:
# the misbehaving datapath must be convicted and quarantined within
# bounded sim time, its sessions re-steered, and the event log
# digest-stable across two same-seed runs.
accountability-smoke:
	@PYTHONPATH=src python -m repro chaos --scenario compromised-switch \
		--variant skip-waypoint --seed 0 --assert-detected \
		--assert-recovered | tee /tmp/acct-a.txt
	@PYTHONPATH=src python -m repro chaos --scenario compromised-switch \
		--variant skip-waypoint --seed 0 --assert-detected \
		--assert-recovered | tee /tmp/acct-b.txt
	@a=$$(grep -o 'digest [0-9a-f]*' /tmp/acct-a.txt); \
	b=$$(grep -o 'digest [0-9a-f]*' /tmp/acct-b.txt); \
	if [ -z "$$a" ] || [ "$$a" != "$$b" ]; then \
		echo "accountability digest mismatch: '$$a' vs '$$b'"; exit 1; \
	else \
		echo "accountability determinism OK ($$a)"; \
	fi
	@grep -q 'quarantined=\[2\]' /tmp/acct-a.txt || \
		{ echo "compromised dpid 2 was not quarantined"; exit 1; }

# The shard fabric end to end: boot a 4-shard control plane, then the
# seeded shard-failover scenario -- a cross-pod roam must hand its
# established session off intact, and killing a shard must re-home its
# switches onto the survivors with the crashed pod's flows still
# delivering bytes afterwards.
shard-smoke:
	PYTHONPATH=src python -m repro shards --shards 4
	@PYTHONPATH=src python -m repro chaos --scenario shard-failover \
		--seed 0 --assert-rehomed | tee /tmp/shard-smoke.txt
	@grep -q 'roam-survived=True' /tmp/shard-smoke.txt || \
		{ echo "cross-pod handoff dropped the session"; exit 1; }
	@grep -q 'flows-after-crash=2/2' /tmp/shard-smoke.txt || \
		{ echo "sessions did not survive the shard crash"; exit 1; }

# The fluid fast-forward kernel end to end: a seeded CBR mix must
# match the packet-level oracle flow-for-flow and digest-for-digest
# (--assert-equivalent exits non-zero otherwise), including under a
# mid-run link flap; the fluid run itself must be digest-stable
# across two identical invocations.
fluid-smoke:
	@PYTHONPATH=src python -m repro fluid --seed 3 --assert-equivalent \
		| tee /tmp/fluid-a.txt
	@PYTHONPATH=src python -m repro fluid --seed 3 --assert-equivalent \
		| tee /tmp/fluid-b.txt
	@a=$$(grep -o 'digest [0-9a-f]\{64\}' /tmp/fluid-a.txt); \
	b=$$(grep -o 'digest [0-9a-f]\{64\}' /tmp/fluid-b.txt); \
	if [ -z "$$a" ] || [ "$$a" != "$$b" ]; then \
		echo "fluid digest mismatch: '$$a' vs '$$b'"; exit 1; \
	else \
		echo "fluid determinism OK ($$a)"; \
	fi
	@PYTHONPATH=src python -m repro fluid --seed 6 --link-flap \
		--assert-equivalent | tee /tmp/fluid-flap.txt
	@echo "fluid oracle equivalence OK (steady + link flap)"

# Record a seeded scenario's event log to JSONL, replay it from disk,
# and require the replayed digest to match the live run's exactly.
replay-smoke:
	@PYTHONPATH=src python -m repro chaos --seed 0 \
		--record /tmp/replay-live.jsonl | tee /tmp/replay-live.txt
	@PYTHONPATH=src python -m repro replay /tmp/replay-live.jsonl --at 6.0
	@PYTHONPATH=src python -m repro replay /tmp/replay-live.jsonl \
		--digest-only | tee /tmp/replay-again.txt
	@a=$$(grep -o 'digest [0-9a-f]\{64\}' /tmp/replay-live.txt); \
	b=$$(grep -o 'digest [0-9a-f]\{64\}' /tmp/replay-again.txt); \
	if [ -z "$$a" ] || [ "$$a" != "$$b" ]; then \
		echo "replay digest mismatch: '$$a' vs '$$b'"; exit 1; \
	else \
		echo "replay round trip OK ($$a)"; \
	fi

# The policy-compiler lifecycle end to end: the sample intent file
# compiles clean, the seeded conflicting file is rejected with its
# structured report, and a mid-scenario hot-reload is digest-stable
# across two identical runs.
policy-smoke:
	PYTHONPATH=src python -m repro policy check examples/policies/intents.json
	@if PYTHONPATH=src python -m repro policy check \
			examples/policies/conflicting_intents.json \
			> /tmp/policy-conflicts.txt 2>&1; then \
		echo "conflicting intent file was NOT rejected"; exit 1; \
	fi
	@grep -q "contradictory" /tmp/policy-conflicts.txt || \
		{ echo "missing contradictory finding"; exit 1; }
	@grep -q "shadowed" /tmp/policy-conflicts.txt || \
		{ echo "missing shadowed finding"; exit 1; }
	@echo "conflicting intent file rejected with both findings"
	@PYTHONPATH=src python -m repro policy reload \
		examples/policies/intents.json \
		--record /tmp/policy-reload-a.jsonl | tee /tmp/policy-a.txt
	@PYTHONPATH=src python -m repro policy reload \
		examples/policies/intents.json \
		--record /tmp/policy-reload-b.jsonl | tee /tmp/policy-b.txt
	@a=$$(grep -o 'digest [0-9a-f]\{64\}' /tmp/policy-a.txt); \
	b=$$(grep -o 'digest [0-9a-f]\{64\}' /tmp/policy-b.txt); \
	if [ -z "$$a" ] || [ "$$a" != "$$b" ]; then \
		echo "policy reload digest mismatch: '$$a' vs '$$b'"; exit 1; \
	else \
		echo "policy hot-reload OK, digest-stable ($$a)"; \
	fi

# Runtime app operations end to end: boot a deployment, stop ->
# reload -> start the monitor app mid-traffic, record the event log,
# and replay the session journal from disk (the CLI itself exits
# non-zero if the replayed digest diverges from the live one).  Run
# twice: the journal digest must be identical across same-seed runs.
ops-smoke:
	@PYTHONPATH=src python -m repro ops --action cycle \
		--record /tmp/ops-a.jsonl | tee /tmp/ops-a.txt
	@PYTHONPATH=src python -m repro ops --action cycle \
		--record /tmp/ops-b.jsonl | tee /tmp/ops-b.txt
	@PYTHONPATH=src python -m repro journal /tmp/ops-a.jsonl --digest-only
	@a=$$(grep -o 'journal digest [0-9a-f]\{64\}' /tmp/ops-a.txt); \
	b=$$(grep -o 'journal digest [0-9a-f]\{64\}' /tmp/ops-b.txt); \
	if [ -z "$$a" ] || [ "$$a" != "$$b" ]; then \
		echo "ops journal digest mismatch: '$$a' vs '$$b'"; exit 1; \
	else \
		echo "ops lifecycle OK, journal digest-stable ($$a)"; \
	fi

examples:
	python examples/quickstart.py
	python examples/campus_visualization.py
	python examples/attack_mitigation.py
	python examples/load_balancing.py
	python examples/aggregate_flow_control.py
	python examples/datacenter_fabric.py

all: install test bench
