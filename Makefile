# Convenience targets for the LiveSec reproduction.

.PHONY: install test bench examples all

install:
	python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only -s

examples:
	python examples/quickstart.py
	python examples/campus_visualization.py
	python examples/attack_mitigation.py
	python examples/load_balancing.py
	python examples/aggregate_flow_control.py
	python examples/datacenter_fabric.py

all: install test bench
