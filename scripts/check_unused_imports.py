#!/usr/bin/env python3
"""Fail on unused imports, stdlib-only (the CI fallback when ruff is
absent).

An import is *used* if its bound name appears as a ``Name`` node
anywhere else in the module, is re-exported via ``__all__``, or is an
explicit ``x as x`` re-export (PEP 484 convention for public API
modules).  ``from __future__`` imports, ``import *``, and imports
guarded by ``if TYPE_CHECKING:`` (typically referenced only inside
string annotations, which this checker does not parse) are skipped.

Usage: python scripts/check_unused_imports.py DIR [DIR ...]
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple


def iter_sources(roots: List[str]) -> Iterator[Path]:
    for root in roots:
        path = Path(root)
        if path.is_file():
            yield path
        else:
            yield from sorted(path.rglob("*.py"))


def bound_names(node: ast.stmt) -> Iterator[Tuple[str, bool]]:
    """Yield (bound name, is_explicit_reexport) for one import node."""
    if isinstance(node, ast.Import):
        for alias in node.names:
            if alias.asname is not None:
                yield alias.asname, alias.asname == alias.name
            else:
                # ``import a.b.c`` binds the root package ``a``.
                yield alias.name.partition(".")[0], False
    elif isinstance(node, ast.ImportFrom):
        if node.module == "__future__":
            return
        for alias in node.names:
            if alias.name == "*":
                continue
            name = alias.asname or alias.name
            yield name, alias.asname == alias.name


def exported_names(tree: ast.Module) -> set:
    names = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            if any(
                isinstance(t, ast.Name) and t.id == "__all__" for t in targets
            ):
                for constant in ast.walk(node.value):
                    if isinstance(constant, ast.Constant) and isinstance(
                        constant.value, str
                    ):
                        names.add(constant.value)
    return names


def is_type_checking_guard(node: ast.stmt) -> bool:
    if not isinstance(node, ast.If):
        return False
    test = node.test
    return (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING") or (
        isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"
    )


def check_file(path: Path) -> List[str]:
    tree = ast.parse(path.read_text(), filename=str(path))
    skipped = set()
    for node in ast.walk(tree):
        if is_type_checking_guard(node):
            for child in ast.walk(node):
                skipped.add(id(child))
    imports = []  # (lineno, name)
    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            if id(node) in skipped:
                continue
            for name, reexport in bound_names(node):
                if not reexport:
                    imports.append((node.lineno, name))
    if not imports:
        return []
    used = {
        node.id
        for node in ast.walk(tree)
        if isinstance(node, ast.Name)
    }
    used |= exported_names(tree)
    return [
        f"{path}:{lineno}: unused import {name!r}"
        for lineno, name in imports
        if name not in used
    ]


def main(argv: List[str]) -> int:
    roots = argv or ["src", "tests", "benchmarks"]
    problems: List[str] = []
    for source in iter_sources(roots):
        problems.extend(check_file(source))
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"{len(problems)} unused import(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
