#!/usr/bin/env python
"""Aggregate flow control (Section IV.C): per-user rate quotas.

Two users share the network.  Alice has a 10 Mbps aggregate quota and
tries to push 40 Mbps over several parallel flows; Bob has no quota.
The controller aggregates per-user rates from polled flow statistics
and repeatedly penalizes Alice at her own ingress switch (self-expiring
drop entries), while Bob is never touched.

Run with:  python examples/aggregate_flow_control.py
"""

from repro import build_livesec_network
from repro.core.flowcontrol import USER_THROTTLED, AggregateFlowControl
from repro.workloads import CbrUdpFlow

GATEWAY_IP = "10.255.255.254"


def main() -> None:
    net = build_livesec_network(topology="linear", num_as=3, hosts_per_as=1)
    net.start()

    control = AggregateFlowControl(
        net.controller, check_interval_s=0.5, penalty_s=2.0
    )
    alice = net.host("h1_1")
    bob = net.host("h2_1")
    control.set_quota(alice.mac, 10e6)
    print(f"alice quota: 10 Mbps;  bob: unlimited")

    alice_flows = [
        CbrUdpFlow(net.sim, alice, GATEWAY_IP, rate_bps=10e6,
                   sport=21000 + i).start()
        for i in range(4)
    ]
    bob_flow = CbrUdpFlow(net.sim, bob, GATEWAY_IP, rate_bps=40e6).start()

    before = {
        "alice": sum(f.delivered_bytes(net.gateway) for f in alice_flows),
        "bob": bob_flow.delivered_bytes(net.gateway),
    }
    net.run(10.0)
    for flow in alice_flows + [bob_flow]:
        flow.stop()

    alice_mbps = (
        sum(f.delivered_bytes(net.gateway) for f in alice_flows)
        - before["alice"]
    ) * 8 / 10.0 / 1e6
    bob_mbps = (
        bob_flow.delivered_bytes(net.gateway) - before["bob"]
    ) * 8 / 10.0 / 1e6

    print(f"\nalice offered 40 Mbps -> delivered {alice_mbps:.1f} Mbps"
          f" (throttled toward her 10 Mbps quota)")
    print(f"bob   offered 40 Mbps -> delivered {bob_mbps:.1f} Mbps"
          f" (untouched)")
    print(f"throttle events: {control.throttle_events}")
    for event in net.controller.log.query(kind=USER_THROTTLED)[:5]:
        print(" ", event)


if __name__ == "__main__":
    main()
