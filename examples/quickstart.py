#!/usr/bin/env python
"""Quickstart: build a small LiveSec network, steer a flow through an
IDS element, watch an attack get blocked at the ingress switch.

Run with:  python examples/quickstart.py
"""

from repro import Policy, PolicyTable, build_livesec_network
from repro.core.events import EventKind
from repro.core.policy import FlowSelector, PolicyAction
from repro.workloads import AttackWebFlow, HttpFlow

GATEWAY_IP = "10.255.255.254"


def main() -> None:
    # 1. Policy: all Internet-bound traffic must traverse an IDS.
    policies = PolicyTable()
    policies.begin().add(
        Policy(
            name="inspect-internet",
            selector=FlowSelector(dst_ip=GATEWAY_IP),
            action=PolicyAction.CHAIN,
            service_chain=("ids",),
        )
    ).commit()

    # 2. Build: 3 AS switches on one legacy core, two IDS elements.
    net = build_livesec_network(
        topology="linear",
        policies=policies,
        elements=[("ids", 2)],
        num_as=3,
        hosts_per_as=2,
    )
    net.start()
    print("deployment up:", net.status()["nib"])

    # 3. A well-behaved web flow: steered through the IDS, delivered.
    alice = net.host("h1_1")
    flow = HttpFlow(net.sim, alice, GATEWAY_IP, rate_bps=5e6, duration_s=3.0)
    flow.start()
    net.run(4.0)
    print(f"alice's goodput: {flow.goodput_bps(net.gateway) / 1e6:.1f} Mbps")
    steered = net.controller.log.query(kind=EventKind.FLOW_STEERED)
    print(f"flows steered through elements: {len(steered)}")

    # 4. A malicious web access: detected by the IDS element, reported
    #    to the controller, dropped at the attacker's own switch.
    mallory = net.host("h2_1")
    attack = AttackWebFlow(net.sim, mallory, GATEWAY_IP, rate_bps=2e6,
                           duration_s=4.0)
    attack.start()
    net.run(5.0)

    for event in net.controller.log.query(kind=EventKind.ATTACK_DETECTED):
        print("ATTACK:", event)
    for event in net.controller.log.query(kind=EventKind.FLOW_BLOCKED):
        print("BLOCKED:", event)

    # 5. The live view the WebUI would render.
    print()
    from repro.core.visualization import render_snapshot

    print(render_snapshot(net.monitoring.snapshot()))


if __name__ == "__main__":
    main()
