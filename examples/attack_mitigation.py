#!/usr/bin/env python
"""End-to-end attack mitigation: full-mesh security coverage.

Unlike a gateway middlebox, LiveSec inspects *east-west* traffic too:
this scenario chains a firewall and an IDS on host-to-host flows
inside the network, then shows four attack classes being caught:

1. a SQL-injection attempt against an internal web server,
2. a port scan swept across an internal host,
3. a virus download (EICAR) crossing between work zones,
4. an uncertified rogue "service element" trying to talk to the
   controller, which gets its traffic dropped at its ingress port.

Run with:  python examples/attack_mitigation.py
"""

from repro import Policy, PolicyTable, build_livesec_network
from repro.core.events import EventKind
from repro.core.policy import FlowSelector, PolicyAction
from repro.workloads import HttpFlow, PortScanFlow, VirusDownloadFlow


def main() -> None:
    policies = PolicyTable()
    # East-west coverage: everything between the 10.0.0.0 hosts is
    # chained through virus scanning and intrusion detection.
    policies.begin().add(
        Policy(
            name="east-west-inspection",
            selector=FlowSelector(src_ip_prefix="10.0.", dst_ip_prefix="10.0."),
            action=PolicyAction.CHAIN,
            service_chain=("virus", "ids"),
            priority=100,
        )
    ).commit()
    net = build_livesec_network(
        topology="star",
        policies=policies,
        elements=[("ids", 2), ("virus", 1)],
        num_as=4,
        hosts_per_as=2,
    )
    net.start()

    victim = net.host("h4_2")
    print(f"victim: {victim.name} ({victim.ip})")

    # 1. SQL injection inside the network.
    class SqliFlow(HttpFlow):
        def payload_for(self, index: int) -> bytes:
            if index == 2:
                return b"GET /login?user=' OR '1'='1 HTTP/1.1\r\n\r\n"
            return super().payload_for(index)

    SqliFlow(net.sim, net.host("h1_1"), victim.ip, rate_bps=2e6,
             duration_s=3.0).start()

    # 2. A port scan from another zone.
    PortScanFlow(net.sim, net.host("h2_1"), victim.ip, ports=40).start(0.5)

    # 3. A virus download between work zones.
    VirusDownloadFlow(net.sim, net.host("h3_1"), victim.ip, rate_bps=2e6,
                      duration_s=3.0).start(1.0)

    net.run(6.0)

    # 4. A rogue element without a valid certificate.
    from repro.core import messages as svcmsg
    from repro.elements import IntrusionDetectionElement

    rogue = IntrusionDetectionElement(
        net.sim, "rogue", "00:00:00:00:99:99", "10.9.9.9"
    )
    rogue.provision("forged-certificate-0000")
    from repro.net.node import connect

    connect(net.sim, net.topology.as_switches[0], rogue, bandwidth_bps=1e9,
            delay_s=5e-6)
    net.run(3.0)

    print("\ndetections:")
    for event in net.controller.log.query(kind=EventKind.ATTACK_DETECTED):
        print(" ", event)
    print("\nblocked at ingress:")
    for event in net.controller.log.query(kind=EventKind.FLOW_BLOCKED):
        print(" ", event)
    print("\nrejected elements:")
    for event in net.controller.log.query(kind=EventKind.ELEMENT_REJECTED):
        print(" ", event)

    summary = net.status()
    print(
        f"\nflows blocked: {summary['counters']['flows_blocked']}"
        f"  sessions live: {summary['sessions']}"
        f"  certified elements online: {summary['registry']['online']}"
    )


if __name__ == "__main__":
    main()
