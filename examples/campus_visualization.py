#!/usr/bin/env python
"""The paper's Figure 7 / Figure 8 visualization scenario.

A small campus network (3 OvS + 1 OF Wi-Fi AP, 2 IDS + 2 protocol-
identification elements) with 5 wireless users:

* Figure 7 (normal): 4 users browse the web, 1 uses SSH; traffic is
  light; the logical topology is a full mesh.
* Figure 8 (events): one user leaves; one web user switches to
  BitTorrent (link utilization spikes); one user accesses a malicious
  website, is detected and blocked.

The script renders both moments from the live monitoring view and
then *replays* Figure 7's state from history after Figure 8 already
happened -- the history-replay feature of Section IV.D.

Run with:  python examples/campus_visualization.py
"""

from repro import Policy, PolicyTable, build_livesec_network
from repro.core.policy import FlowSelector, PolicyAction
from repro.core.visualization import render_snapshot
from repro.workloads import AttackWebFlow
from repro.workloads.users import UserBehavior

GATEWAY_IP = "10.255.255.254"


def build():
    policies = PolicyTable()
    policies.begin().add(
        Policy(
            name="identify-apps",
            selector=FlowSelector(dst_ip=GATEWAY_IP),
            action=PolicyAction.CHAIN,
            service_chain=("l7", "ids"),
        )
    ).commit()
    net = build_livesec_network(
        topology="fit",
        policies=policies,
        num_ovs=3,
        num_aps=1,
        wired_users=0,
        wireless_users=5,
        host_timeout_s=8.0,  # so a departed user ages out in-scenario
    )
    # 2 IDS + 2 L7 elements on two different OvS, as in the figures.
    net.add_element("ids", net.topology.as_switches[0])
    net.add_element("ids", net.topology.as_switches[1])
    net.add_element("l7", net.topology.as_switches[0])
    net.add_element("l7", net.topology.as_switches[1])
    net.start()
    return net


def main() -> None:
    net = build()
    users = [
        UserBehavior(net.sim, net.host(f"wifi{i + 1}"), GATEWAY_IP,
                     profile="web" if i < 4 else "ssh", rate_bps=400e3)
        for i in range(5)
    ]
    for user in users:
        user.join()
    net.run(6.0)

    figure7 = net.sim.now
    print("\n--- Figure 7: normal network environment ---")
    print(render_snapshot(net.monitoring.snapshot()))

    # Figure 8 events.
    users[3].leave()                      # one user leaves
    users[0].switch_profile("bittorrent")  # web -> BitTorrent surge
    attacker = users[2]
    AttackWebFlow(net.sim, attacker.host, GATEWAY_IP, rate_bps=1e6,
                  duration_s=5.0).start()
    net.run(16.0)

    print("\n--- Figure 8: user left, BitTorrent surge, attack blocked ---")
    print(render_snapshot(net.monitoring.snapshot()))

    print("\n--- History replay of the Figure 7 moment ---")
    print(render_snapshot(net.monitoring.replay(until=figure7)))

    print("\nevent counts:", net.controller.log.counts_by_kind())


if __name__ == "__main__":
    main()
