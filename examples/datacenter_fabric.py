#!/usr/bin/env python
"""LiveSec over a data-center fat-tree fabric, with real TCP.

Section III.B says the Legacy-Switching layer can be a PortLand/VL2-
class fabric for "elastic scale from 1 host to 100,000".  This example
runs the full LiveSec stack over a k=4 fat tree of ECMP legacy
switches, pushes reliable TCP transfers across pods through an IDS
service chain, and prints per-flow goodput plus the fabric's parallel-
uplink load split.

Run with:  python examples/datacenter_fabric.py
"""

from repro import Policy, PolicyTable
from repro.analysis.ascii_charts import bar_chart
from repro.core.controller import LiveSecController
from repro.core.deployment import LiveSecNetwork
from repro.core.policy import FlowSelector, PolicyAction
from repro.core.visualization import MonitoringComponent
from repro.net.fattree import fat_tree_topology
from repro.net.simulator import Simulator
from repro.workloads.tcpflows import TcpServer, TcpTransfer


def main() -> None:
    sim = Simulator()
    topo = fat_tree_topology(sim, k=4, hosts_per_edge=2,
                             access_bandwidth_bps=1e9)
    policies = PolicyTable()
    policies.begin().add(Policy(
        name="east-west-ids",
        selector=FlowSelector(src_ip_prefix="10.0.", dst_ip_prefix="10.0."),
        action=PolicyAction.CHAIN,
        service_chain=("ids",),
    )).commit()
    controller = LiveSecController(sim, policies=policies)
    net = LiveSecNetwork(
        sim=sim, topology=topo, controller=controller,
        monitoring=MonitoringComponent(controller.log),
    )
    net._connect_channels(0.5e-3)
    # Two IDS elements in different pods.
    net.add_element("ids", topo.as_switches[0])
    net.add_element("ids", topo.as_switches[5])
    net.start()
    print("fabric up:", net.status()["nib"])

    # Cross-pod TCP transfers through the IDS chain.
    server = TcpServer(net.host("h8_2"), port=9000)
    transfers = [
        TcpTransfer(net.host(f"h{index}_1"), net.host("h8_2").ip,
                    port=9000, size_bytes=3_000_000).start(0.1 * index)
        for index in (1, 3, 5, 7)
    ]
    net.run(20.0)

    print(f"\nserver received {server.bytes_received / 1e6:.1f} MB over"
          f" {server.connections_seen} cross-pod connections")
    goodputs = {
        f"pod{1 + (index - 1) // 2} sender": (t.goodput_bps() or 0) / 1e6
        for index, t in zip((1, 3, 5, 7), transfers)
    }
    print(bar_chart({k: round(v, 1) for k, v in goodputs.items()},
                    unit=" Mbps"))

    ids_shares = {
        element.name: element.processed_packets for element in net.elements
    }
    print("\nIDS element shares (packets):")
    print(bar_chart(ids_shares))

    # The parallel uplinks of one edge switch: ECMP spreads flows.
    edge = topo.legacy[-8]  # an edge switch
    from repro.net.ecmp import EcmpLegacySwitch

    if isinstance(edge, EcmpLegacySwitch):
        grouped_ports = [p.number for p in edge.attached_ports()
                         if len(edge.group_of(p.number)) > 1]
        if grouped_ports:
            loads = edge.group_port_loads(grouped_ports)
            print(f"\n{edge.name} parallel uplinks (bytes):")
            print(bar_chart({f"port {p}": float(v)
                             for p, v in loads.items()}))


if __name__ == "__main__":
    main()
