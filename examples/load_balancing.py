#!/usr/bin/env python
"""Distributed load balancing over service elements (Section IV.B).

Eight users push HTTP traffic through a pool of four IDS elements
under the paper's minimum-load dispatcher; the script reports each
element's processed share and the real-time load deviation the paper
bounds at 5 % (Section V.B.2), then contrasts it with hash dispatch.

Run with:  python examples/load_balancing.py
"""

from repro import Policy, PolicyTable, build_livesec_network
from repro.core.loadbalance import load_deviation
from repro.core.policy import FlowSelector, PolicyAction
from repro.workloads import HttpFlow

GATEWAY_IP = "10.255.255.254"


def run_with_dispatcher(dispatcher: str) -> None:
    policies = PolicyTable()
    policies.begin().add(
        Policy(
            name="inspect-internet",
            selector=FlowSelector(dst_ip=GATEWAY_IP),
            action=PolicyAction.CHAIN,
            service_chain=("ids",),
        )
    ).commit()
    net = build_livesec_network(
        topology="linear",
        policies=policies,
        dispatcher=dispatcher,
        elements=[("ids", 4)],
        num_as=4,
        hosts_per_as=2,
    )
    net.start()

    flows = []
    for as_index in range(4):
        for h_index in range(2):
            host = net.host(f"h{as_index + 1}_{h_index + 1}")
            flow = HttpFlow(net.sim, host, GATEWAY_IP, rate_bps=8e6,
                            duration_s=8.0)
            flows.append(flow.start())
    net.run(10.0)

    loads = [e.processed_bytes for e in net.elements]
    deviation = load_deviation([float(l) for l in loads])
    print(f"\ndispatcher={dispatcher}")
    for element, processed in zip(net.elements, loads):
        print(f"  {element.name}: {processed / 1e6:8.2f} MB processed")
    print(f"  load deviation: {deviation * 100:.1f}%"
          f"  (paper: <=5% with minimum-load)")


def main() -> None:
    for dispatcher in ("minload", "queuing", "polling", "hash"):
        run_with_dispatcher(dispatcher)


if __name__ == "__main__":
    main()
